#include "victim/victim.hh"

#include <sstream>

#include "cpu/assembler.hh"
#include "sim/log.hh"

namespace unxpec {

namespace {

/** FIPS-197 S-box. */
constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// Register allocation shared by both listings.
constexpr unsigned rIdx = 1;      // index for the current round
constexpr unsigned rBound = 2;    // f(N) chase / bound value
constexpr unsigned rSecret = 3;   // key byte / exponent bit
constexpr unsigned rBase = 5;     // training-data base (ktab / dtab)
constexpr unsigned rIdxTab = 6;   // index-table base
constexpr unsigned rLatOut = 7;   // rollback-delta output
constexpr unsigned rTmp0 = 8;
constexpr unsigned rTmp1 = 9;
constexpr unsigned rTmp2 = 10;
constexpr unsigned rXor = 11;     // AES: pt ^ key; RSA: constant 0
constexpr unsigned rAddr = 12;    // AES: entry address; RSA: mul op A
constexpr unsigned rPtr = 13;     // AES: probe pointer; RSA: mul op B
constexpr unsigned rTmp3 = 14;    // AES: chained probe addr; RSA: sink
constexpr unsigned rDelta = 15;
constexpr unsigned rLine = 16;    // AES: probe counter; RSA: probe chain
constexpr unsigned rTrial = 17;
constexpr unsigned rTrials = 18;
constexpr unsigned rChain = 19;
constexpr unsigned rProbeOut = 20;
constexpr unsigned rPt = 21;      // AES: plaintext byte; RSA: fuout base
constexpr unsigned rTbase = 22;   // AES: active table; RSA: multab base
constexpr unsigned rFlush = 23;   // AES: line training warmed
constexpr unsigned rT0 = 24;
constexpr unsigned rT1 = 25;
constexpr unsigned rFinal = 26;   // final-round index (probe gate)
constexpr unsigned rEntries = 27; // AES: probe-loop bound

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

/** Build-the-f(N)-chase stores: chain[j] -> chain[j+1], last = bound.
 *  The chain cannot be a data directive because its elements hold its
 *  own (assembler-chosen) address; the listing links it at startup
 *  instead, via the symbol in li-immediate position. */
void
emitChainInit(std::ostream &os, unsigned accesses, unsigned bound)
{
    for (unsigned j = 0; j + 1 < accesses; ++j) {
        os << "    li " << reg(rTmp0) << ", chain\n";
        os << "    addi " << reg(rTmp0) << ", " << reg(rTmp0) << ", "
           << j * kLineBytes << "\n";
        os << "    li " << reg(rTmp1) << ", chain\n";
        os << "    addi " << reg(rTmp1) << ", " << reg(rTmp1) << ", "
           << (j + 1) * kLineBytes << "\n";
        os << "    store8 [" << reg(rTmp0) << "+0], " << reg(rTmp1)
           << "\n";
    }
    os << "    li " << reg(rTmp0) << ", chain\n";
    os << "    addi " << reg(rTmp0) << ", " << reg(rTmp0) << ", "
       << (accesses - 1) * kLineBytes << "\n";
    os << "    li " << reg(rTmp1) << ", " << bound << "\n";
    os << "    store8 [" << reg(rTmp0) << "+0], " << reg(rTmp1) << "\n";
}

/** Flush the chain, then time the chase + ALU padding into rBound. */
void
emitBoundsCondition(std::ostream &os, const VictimConfig &cfg)
{
    for (unsigned j = 0; j < cfg.conditionAccesses; ++j)
        os << "    clflush [" << reg(rChain) << "+" << j * kLineBytes
           << "]\n";
    os << "    fence\n";
    os << "    rdtscp " << reg(rT0) << "\n";
    os << "    mov " << reg(rBound) << ", " << reg(rChain) << "\n";
    for (unsigned j = 0; j < cfg.conditionAccesses; ++j)
        os << "    load8 " << reg(rBound) << ", [" << reg(rBound)
           << "+0]\n";
    for (unsigned p = 0; p < cfg.conditionPadding; ++p)
        os << "    addi " << reg(rBound) << ", " << reg(rBound)
           << ", 0\n";
    os << "    bge " << reg(rIdx) << ", " << reg(rBound) << ", skip\n";
}

std::string
aesSource(const VictimConfig &cfg)
{
    const unsigned trials = cfg.mistrainIterations + 1;
    std::ostringstream os;
    os << "; AES-128 T-table first round under a mistrained bounds\n"
       << "; check, with a Flush+Reload probe of the active table on\n"
       << "; the final round. Generated by buildVictim().\n";

    // ---- data segment --------------------------------------------------
    os << ".data " << kAesTableSym << " "
       << kAesNumTables * aesTableBytes() << "\n";
    os << ".data " << kAesTrainKeySym << " " << kLineBytes << "\n";
    os << ".data " << kAesKeySym << " " << kLineBytes << "\n";
    os << ".data " << kAesPlaintextSym << " " << kLineBytes << "\n";
    os << ".data " << kAesTableBaseSym << " " << kLineBytes << "\n";
    os << ".data " << kAesFlushSym << " " << kLineBytes << "\n";
    os << ".data chain " << cfg.conditionAccesses * kLineBytes << "\n";
    os << ".data " << kIdxTabSym << " " << 8 * trials << "\n";
    os << ".data " << kLatOutSym << " " << kLineBytes << "\n";
    os << ".data " << kAesProbeOutSym << " " << 8 * kAesTableEntries
       << "\n";
    // The four T-tables, one 32-bit entry per cache line.
    for (unsigned t = 0; t < kAesNumTables; ++t) {
        for (unsigned e = 0; e < kAesTableEntries; ++e) {
            os << ".word " << kAesTableSym << " "
               << t * aesTableBytes() + e * kLineBytes << " "
               << aesTtableEntry(t, e) << "\n";
        }
    }

    // ---- warmup --------------------------------------------------------
    os << "    li " << reg(rBase) << ", " << kAesTrainKeySym << "\n";
    os << "    li " << reg(rIdxTab) << ", " << kIdxTabSym << "\n";
    os << "    li " << reg(rLatOut) << ", " << kLatOutSym << "\n";
    os << "    li " << reg(rProbeOut) << ", " << kAesProbeOutSym << "\n";
    os << "    li " << reg(rChain) << ", chain\n";
    os << "    li " << reg(rTrial) << ", 0\n";
    os << "    li " << reg(rTrials) << ", " << trials << "\n";
    os << "    li " << reg(rFinal) << ", " << trials - 1 << "\n";
    os << "    li " << reg(rEntries) << ", " << kAesTableEntries << "\n";
    emitChainInit(os, cfg.conditionAccesses, /*bound=*/16);
    // Runtime parameters the harness poked before this run.
    os << "    li " << reg(rTmp0) << ", " << kAesPlaintextSym << "\n";
    os << "    load1 " << reg(rPt) << ", [" << reg(rTmp0) << "+0]\n";
    os << "    li " << reg(rTmp0) << ", " << kAesTableBaseSym << "\n";
    os << "    load8 " << reg(rTbase) << ", [" << reg(rTmp0) << "+0]\n";
    os << "    li " << reg(rTmp0) << ", " << kAesFlushSym << "\n";
    os << "    load8 " << reg(rFlush) << ", [" << reg(rTmp0) << "+0]\n";
    // Victim-side warmup: the key schedule is resident, so the
    // transient key-byte load hits and the table lookup issues early.
    os << "    load1 " << reg(rTmp1) << ", [" << reg(rBase) << "+0]\n";
    os << "    li " << reg(rTmp0) << ", " << kAesKeySym << "\n";
    os << "    load1 " << reg(rTmp1) << ", [" << reg(rTmp0) << "+0]\n";
    // Flush the active table: earlier runs' probes left it warm.
    os << "    mov " << reg(rPtr) << ", " << reg(rTbase) << "\n";
    os << "    li " << reg(rLine) << ", 0\n";
    os << "tflush:\n";
    os << "    clflush [" << reg(rPtr) << "+0]\n";
    os << "    addi " << reg(rPtr) << ", " << reg(rPtr) << ", "
       << kLineBytes << "\n";
    os << "    addi " << reg(rLine) << ", " << reg(rLine) << ", 1\n";
    os << "    blt " << reg(rLine) << ", " << reg(rEntries)
       << ", tflush\n";

    // ---- POISON loop + measured round ----------------------------------
    os << "loop:\n";
    os << "    shl " << reg(rTmp0) << ", " << reg(rTrial) << ", 3\n";
    os << "    add " << reg(rTmp0) << ", " << reg(rTmp0) << ", "
       << reg(rIdxTab) << "\n";
    os << "    load8 " << reg(rIdx) << ", [" << reg(rTmp0) << "+0]\n";
    // Reset the one table line the previous training round warmed.
    os << "    clflush [" << reg(rFlush) << "+0]\n";
    emitBoundsCondition(os, cfg);
    // First-round lookup: T[b & 3][pt[b] ^ key[b]]. Training rounds
    // run it architecturally on the zero training key; the final
    // round reaches the real key byte out-of-bounds, transiently.
    os << "    add " << reg(rTmp2) << ", " << reg(rBase) << ", "
       << reg(rIdx) << "\n";
    os << "    load1 " << reg(rSecret) << ", [" << reg(rTmp2) << "+0]\n";
    os << "    xor " << reg(rXor) << ", " << reg(rSecret) << ", "
       << reg(rPt) << "\n";
    os << "    shl " << reg(rXor) << ", " << reg(rXor) << ", 6\n";
    os << "    add " << reg(rAddr) << ", " << reg(rTbase) << ", "
       << reg(rXor) << "\n";
    os << "    load8 " << reg(rTmp3) << ", [" << reg(rAddr) << "+0]\n";
    os << "skip:\n";
    os << "    rdtscp " << reg(rT1) << "\n";
    os << "    sub " << reg(rDelta) << ", " << reg(rT1) << ", "
       << reg(rT0) << "\n";
    os << "    store8 [" << reg(rLatOut) << "+0], " << reg(rDelta)
       << "\n";
    // Flush+Reload the whole active table — final round only.
    os << "    blt " << reg(rTrial) << ", " << reg(rFinal)
       << ", next\n";
    os << "    mov " << reg(rPtr) << ", " << reg(rTbase) << "\n";
    os << "    li " << reg(rLine) << ", 0\n";
    os << "probe:\n";
    // Chain each reload's address off the serializing timestamp: the
    // skip path is also the transient body's fall-through, and an
    // unchained reload would issue inside the window and warm its own
    // target.
    os << "    rdtscp " << reg(rT0) << "\n";
    os << "    xor " << reg(rTmp3) << ", " << reg(rT0) << ", "
       << reg(rT0) << "\n";
    os << "    add " << reg(rTmp3) << ", " << reg(rTmp3) << ", "
       << reg(rPtr) << "\n";
    os << "    load8 " << reg(rTmp1) << ", [" << reg(rTmp3) << "+0]\n";
    os << "    rdtscp " << reg(rT1) << "\n";
    os << "    sub " << reg(rDelta) << ", " << reg(rT1) << ", "
       << reg(rT0) << "\n";
    os << "    shl " << reg(rTmp3) << ", " << reg(rLine) << ", 3\n";
    os << "    add " << reg(rTmp3) << ", " << reg(rTmp3) << ", "
       << reg(rProbeOut) << "\n";
    os << "    store8 [" << reg(rTmp3) << "+0], " << reg(rDelta)
       << "\n";
    os << "    addi " << reg(rPtr) << ", " << reg(rPtr) << ", "
       << kLineBytes << "\n";
    os << "    addi " << reg(rLine) << ", " << reg(rLine) << ", 1\n";
    os << "    blt " << reg(rLine) << ", " << reg(rEntries)
       << ", probe\n";
    os << "next:\n";
    os << "    addi " << reg(rTrial) << ", " << reg(rTrial) << ", 1\n";
    os << "    blt " << reg(rTrial) << ", " << reg(rTrials)
       << ", loop\n";
    os << "    halt\n";
    return os.str();
}

std::string
rsaSource(const VictimConfig &cfg)
{
    const unsigned trials = cfg.mistrainIterations + 1;
    std::ostringstream os;
    os << "; RSA square-and-multiply, one exponent bit per run: a\n"
       << "; transiently-read 1 bit redirects the trained skip branch\n"
       << "; into a multiply burst plus a multiplier-table load. Both\n"
       << "; receivers are recorded: a Flush+Reload probe of the\n"
       << "; multiplier line and a timed dependent-multiply chain.\n"
       << "; Generated by buildVictim().\n";

    // ---- data segment --------------------------------------------------
    os << ".data " << kRsaTrainBitsSym << " " << kLineBytes << "\n";
    os << ".data " << kRsaExponentSym << " " << kRsaExponentBits << "\n";
    os << ".data " << kRsaMulTabSym << " " << kLineBytes << "\n";
    os << ".data chain " << cfg.conditionAccesses * kLineBytes << "\n";
    os << ".data " << kIdxTabSym << " " << 8 * trials << "\n";
    os << ".data " << kLatOutSym << " " << kLineBytes << "\n";
    os << ".data " << kRsaProbeOutSym << " " << kLineBytes << "\n";
    os << ".data " << kRsaContentionOutSym << " " << kLineBytes << "\n";

    // ---- warmup --------------------------------------------------------
    os << "    li " << reg(rBase) << ", " << kRsaTrainBitsSym << "\n";
    os << "    li " << reg(rIdxTab) << ", " << kIdxTabSym << "\n";
    os << "    li " << reg(rLatOut) << ", " << kLatOutSym << "\n";
    os << "    li " << reg(rProbeOut) << ", " << kRsaProbeOutSym << "\n";
    os << "    li " << reg(rPt) << ", " << kRsaContentionOutSym << "\n";
    os << "    li " << reg(rTbase) << ", " << kRsaMulTabSym << "\n";
    os << "    li " << reg(rChain) << ", chain\n";
    os << "    li " << reg(rXor) << ", 0\n";
    os << "    li " << reg(rAddr) << ", 3\n";
    os << "    li " << reg(rPtr) << ", 5\n";
    os << "    li " << reg(rTrial) << ", 0\n";
    os << "    li " << reg(rTrials) << ", " << trials << "\n";
    emitChainInit(os, cfg.conditionAccesses, /*bound=*/kRsaExponentBits);
    // Warm the operand lines so the transient bit load hits.
    os << "    load1 " << reg(rTmp1) << ", [" << reg(rBase) << "+0]\n";
    os << "    li " << reg(rTmp0) << ", " << kRsaExponentSym << "\n";
    os << "    load1 " << reg(rTmp1) << ", [" << reg(rTmp0) << "+0]\n";
    // Warm the result lines: the serializing timestamps wait on the
    // stores, so a first-run cold miss would inflate one sample.
    os << "    load8 " << reg(rTmp1) << ", [" << reg(rLatOut) << "+0]\n";
    os << "    load8 " << reg(rTmp1) << ", [" << reg(rProbeOut)
       << "+0]\n";
    os << "    load8 " << reg(rTmp1) << ", [" << reg(rPt) << "+0]\n";

    // ---- POISON loop + measured round ----------------------------------
    os << "loop:\n";
    os << "    shl " << reg(rTmp0) << ", " << reg(rTrial) << ", 3\n";
    os << "    add " << reg(rTmp0) << ", " << reg(rTmp0) << ", "
       << reg(rIdxTab) << "\n";
    os << "    load8 " << reg(rIdx) << ", [" << reg(rTmp0) << "+0]\n";
    os << "    clflush [" << reg(rTbase) << "+0]\n";
    emitBoundsCondition(os, cfg);
    // bit = exponent[idx]; the multiply step runs only for a 1 bit.
    os << "    add " << reg(rTmp2) << ", " << reg(rBase) << ", "
       << reg(rIdx) << "\n";
    os << "    load1 " << reg(rSecret) << ", [" << reg(rTmp2) << "+0]\n";
    os << "    beq " << reg(rSecret) << ", " << reg(rXor) << ", skip\n";
    for (unsigned m = 0; m < cfg.transientMuls; ++m)
        os << "    mul " << reg(rTmp3) << ", " << reg(rAddr) << ", "
           << reg(rPtr) << "\n";
    os << "    load8 " << reg(rTmp1) << ", [" << reg(rTbase) << "+0]\n";
    os << "skip:\n";
    os << "    rdtscp " << reg(rT1) << "\n";
    os << "    sub " << reg(rDelta) << ", " << reg(rT1) << ", "
       << reg(rT0) << "\n";
    os << "    store8 [" << reg(rLatOut) << "+0], " << reg(rDelta)
       << "\n";
    // Contention probe: dependent multiplies chained off t1 so none
    // of them issue transiently.
    os << "    mov " << reg(rLine) << ", " << reg(rT1) << "\n";
    for (unsigned m = 0; m < cfg.probeMuls; ++m)
        os << "    mul " << reg(rLine) << ", " << reg(rLine) << ", "
           << reg(rPtr) << "\n";
    os << "    rdtscp " << reg(rT0) << "\n";
    os << "    sub " << reg(rTmp2) << ", " << reg(rT0) << ", "
       << reg(rT1) << "\n";
    os << "    store8 [" << reg(rPt) << "+0], " << reg(rTmp2) << "\n";
    // Cache probe of the multiplier line, chained like the AES probe.
    os << "    rdtscp " << reg(rT0) << "\n";
    os << "    xor " << reg(rTmp2) << ", " << reg(rT0) << ", "
       << reg(rT0) << "\n";
    os << "    add " << reg(rTmp2) << ", " << reg(rTmp2) << ", "
       << reg(rTbase) << "\n";
    os << "    load8 " << reg(rTmp1) << ", [" << reg(rTmp2) << "+0]\n";
    os << "    rdtscp " << reg(rT1) << "\n";
    os << "    sub " << reg(rTmp2) << ", " << reg(rT1) << ", "
       << reg(rT0) << "\n";
    os << "    store8 [" << reg(rProbeOut) << "+0], " << reg(rTmp2)
       << "\n";
    os << "    addi " << reg(rTrial) << ", " << reg(rTrial) << ", 1\n";
    os << "    blt " << reg(rTrial) << ", " << reg(rTrials)
       << ", loop\n";
    os << "    halt\n";
    return os.str();
}

} // namespace

std::size_t
aesTableBytes()
{
    return static_cast<std::size_t>(kAesTableEntries) * kLineBytes;
}

const std::array<std::uint8_t, 256> &
aesSbox()
{
    return kSbox;
}

std::uint32_t
aesTtableEntry(unsigned table, unsigned index)
{
    if (table >= kAesNumTables || index >= kAesTableEntries)
        fatal("aesTtableEntry: out of range (", table, ", ", index, ")");
    const std::uint8_t s = kSbox[index];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    // T0 = [2s, s, s, 3s]; T1..T3 are byte rotations of T0.
    const std::uint32_t t0 = (static_cast<std::uint32_t>(s2) << 24) |
                             (static_cast<std::uint32_t>(s) << 16) |
                             (static_cast<std::uint32_t>(s) << 8) |
                             s3;
    if (table == 0)
        return t0;
    return (t0 >> (8 * table)) | (t0 << (32 - 8 * table));
}

Addr
VictimListing::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("victim listing: unknown data symbol '", name, "'");
    return it->second;
}

VictimListing
buildVictim(const VictimConfig &cfg)
{
    if (cfg.conditionAccesses == 0)
        fatal("buildVictim: the bounds chase needs an access");
    if (cfg.mistrainIterations == 0)
        fatal("buildVictim: need at least one mistraining round");
    VictimListing listing;
    listing.trials = cfg.mistrainIterations + 1;
    listing.source = cfg.kind == VictimKind::AesTtable ? aesSource(cfg)
                                                       : rsaSource(cfg);
    listing.program = Assembler::assemble(listing.source,
                                          listing.symbols);
    return listing;
}

} // namespace unxpec
