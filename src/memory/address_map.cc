#include "memory/address_map.hh"

#include "sim/log.hh"

namespace unxpec {

std::unique_ptr<IndexFunction>
IndexFunction::create(IndexPolicy policy, unsigned num_sets,
                      std::uint64_t key)
{
    switch (policy) {
      case IndexPolicy::Modulo:
        return std::make_unique<ModuloIndex>(num_sets);
      case IndexPolicy::Ceaser:
        return std::make_unique<CeaserIndex>(num_sets, key);
    }
    panic("unknown index policy");
}

unsigned
ModuloIndex::set(Addr line_addr) const
{
    return static_cast<unsigned>(lineNumber(line_addr) % numSets_);
}

namespace {

/** Simple keyed mixing function for one Feistel round. */
std::uint32_t
feistelRound(std::uint32_t half, std::uint64_t key)
{
    std::uint64_t x = half ^ key;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

} // namespace

CeaserIndex::CeaserIndex(unsigned num_sets, std::uint64_t key)
    : IndexFunction(num_sets)
{
    std::uint64_t k = key ? key : 0xdeadbeefcafef00dull;
    for (auto &round_key : roundKeys_) {
        k = k * 6364136223846793005ull + 1442695040888963407ull;
        round_key = k;
    }
}

std::uint64_t
CeaserIndex::permute(std::uint64_t line_number) const
{
    auto left = static_cast<std::uint32_t>(line_number >> 32);
    auto right = static_cast<std::uint32_t>(line_number);
    for (const auto round_key : roundKeys_) {
        const std::uint32_t next = left ^ feistelRound(right, round_key);
        left = right;
        right = next;
    }
    return (static_cast<std::uint64_t>(left) << 32) | right;
}

unsigned
CeaserIndex::set(Addr line_addr) const
{
    return static_cast<unsigned>(permute(lineNumber(line_addr)) % numSets_);
}

} // namespace unxpec
