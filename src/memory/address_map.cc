#include "memory/address_map.hh"

#include "sim/log.hh"

namespace unxpec {

std::unique_ptr<IndexFunction>
IndexFunction::create(IndexPolicy policy, unsigned num_sets,
                      std::uint64_t key)
{
    switch (policy) {
      case IndexPolicy::Modulo:
        return std::make_unique<ModuloIndex>(num_sets);
      case IndexPolicy::Ceaser:
        return std::make_unique<CeaserIndex>(num_sets, key);
    }
    panic("unknown index policy");
}

unsigned
ModuloIndex::set(Addr line_addr) const
{
    return static_cast<unsigned>(lineNumber(line_addr) % numSets_);
}

CeaserIndex::CeaserIndex(unsigned num_sets, std::uint64_t key)
    : IndexFunction(num_sets)
{
    detail::expandCeaserKeys(key, roundKeys_);
}

std::uint64_t
CeaserIndex::permute(std::uint64_t line_number) const
{
    return detail::ceaserPermute(line_number, roundKeys_);
}

unsigned
CeaserIndex::set(Addr line_addr) const
{
    return static_cast<unsigned>(permute(lineNumber(line_addr)) % numSets_);
}

} // namespace unxpec
