#include "memory/mshr.hh"

#include <algorithm>

#include "sim/log.hh"

namespace unxpec {

void
MshrFile::release(Cycle now)
{
    std::erase_if(entries_, [now](const MshrEntry &e) {
        return e.readyCycle <= now;
    });
}

MshrEntry *
MshrFile::find(Addr line_addr)
{
    for (auto &entry : entries_) {
        if (entry.lineAddr == line_addr)
            return &entry;
    }
    return nullptr;
}

const MshrEntry *
MshrFile::find(Addr line_addr) const
{
    return const_cast<MshrFile *>(this)->find(line_addr);
}

MshrEntry &
MshrFile::allocate(Addr line_addr, Cycle ready, bool speculative,
                   SeqNum installer)
{
    if (full())
        panic("MshrFile::allocate on full file");
    MshrEntry entry;
    entry.lineAddr = line_addr;
    entry.readyCycle = ready;
    entry.speculative = speculative;
    entry.installer = installer;
    entry.targets = 1;
    entries_.push_back(entry);
    return entries_.back();
}

bool
MshrFile::squash(Addr line_addr)
{
    const auto before = entries_.size();
    std::erase_if(entries_, [line_addr](const MshrEntry &e) {
        return e.lineAddr == line_addr;
    });
    return entries_.size() != before;
}

bool
MshrFile::cancel(Addr line_addr, SeqNum installer)
{
    const auto before = entries_.size();
    std::erase_if(entries_, [line_addr, installer](const MshrEntry &e) {
        return e.lineAddr == line_addr && e.speculative &&
               e.installer == installer;
    });
    return entries_.size() != before;
}

Cycle
MshrFile::earliestReady() const
{
    Cycle earliest = kCycleNever;
    for (const auto &entry : entries_)
        earliest = std::min(earliest, entry.readyCycle);
    return earliest;
}

} // namespace unxpec
