/**
 * @file
 * Replacement policies. CleanupSpec mandates *random* replacement in
 * the L1 D-cache (hiding replacement-metadata side channels exploited
 * by speculative interference attacks); other levels default to LRU.
 * NoMo-style way partitioning is expressed through an allowed-way mask
 * supplied by the cache.
 *
 * The hot path (Cache::touch on every hit, install on every fill) goes
 * through ReplacementState, a concrete enum-dispatched implementation
 * whose touch/fill inline to a branch plus a store; the virtual
 * ReplacementPolicy hierarchy remains for the cold create path and for
 * tests that exercise the policies directly.
 */

#ifndef UNXPEC_MEMORY_REPLACEMENT_HH
#define UNXPEC_MEMORY_REPLACEMENT_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace unxpec {

/**
 * Devirtualized replacement metadata for one cache: LRU timestamps or
 * the shared Rng for random victims, selected by a two-value enum.
 * Invalid ways are always preferred as victims by the cache itself;
 * victim() is consulted only when every allowed way is valid.
 */
class ReplacementState
{
  public:
    ReplacementState(ReplPolicy policy, unsigned num_sets, unsigned ways,
                     Rng &rng, Arena *arena = nullptr)
        : policy_(policy), ways_(ways), rng_(rng),
          stamps_(policy == ReplPolicy::LRU
                      ? static_cast<std::size_t>(num_sets) * ways
                      : 0,
                  0, ArenaAllocator<std::uint64_t>(arena))
    {
    }

    /** Record a hit on (set, way). */
    void
    touch(unsigned set, unsigned way)
    {
        if (policy_ == ReplPolicy::LRU)
            stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
    }

    /** Record a fill into (set, way). */
    void fill(unsigned set, unsigned way) { touch(set, way); }

    /**
     * Choose a victim way within `set` among ways whose bit is set in
     * `allowed_mask` (never zero).
     */
    unsigned victim(unsigned set, std::uint64_t allowed_mask);

    /** Forget all history (freshly-constructed state; Core::reset). */
    void
    reset()
    {
        tick_ = 0;
        std::fill(stamps_.begin(), stamps_.end(), 0);
    }

    ReplPolicy policy() const { return policy_; }

    /** LRU timestamp of (set, way), 0 under non-LRU policies (audit). */
    std::uint64_t
    auditStamp(unsigned set, unsigned way) const
    {
        if (policy_ != ReplPolicy::LRU)
            return 0;
        return stamps_[static_cast<std::size_t>(set) * ways_ + way];
    }

    /** Current LRU tick — an upper bound on every stamp (audit). */
    std::uint64_t auditTick() const { return tick_; }

  private:
    ReplPolicy policy_;
    unsigned ways_;
    Rng &rng_;
    std::uint64_t tick_ = 0;
    ArenaVector<std::uint64_t> stamps_; // numSets * ways (LRU only)

    /** Test-only corruption hook for proving the auditor fires. */
    friend struct AuditTap;
};

/**
 * Abstract replacement policy over a (numSets x ways) array — the
 * cold/virtual interface kept for direct tests and extensions.
 */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(unsigned num_sets, unsigned ways)
        : numSets_(num_sets), ways_(ways) {}
    virtual ~ReplacementPolicy() = default;

    /** Record a hit on (set, way). */
    virtual void touch(unsigned set, unsigned way) = 0;

    /** Record a fill into (set, way). */
    virtual void fill(unsigned set, unsigned way) = 0;

    /**
     * Choose a victim way within `set` among ways whose bit is set in
     * `allowed_mask` (never zero).
     */
    virtual unsigned victim(unsigned set, std::uint64_t allowed_mask) = 0;

    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

    /** Factory for the policy named in a CacheConfig. */
    static std::unique_ptr<ReplacementPolicy>
    create(ReplPolicy policy, unsigned num_sets, unsigned ways, Rng &rng);

  protected:
    unsigned numSets_;
    unsigned ways_;
};

/** Least-recently-used via per-way timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(unsigned num_sets, unsigned ways);

    void touch(unsigned set, unsigned way) override;
    void fill(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, std::uint64_t allowed_mask) override;

  private:
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> stamps_; // numSets * ways
};

/** Uniformly random victim among allowed ways (CleanupSpec L1). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(unsigned num_sets, unsigned ways, Rng &rng)
        : ReplacementPolicy(num_sets, ways), rng_(rng) {}

    void touch(unsigned, unsigned) override {}
    void fill(unsigned, unsigned) override {}
    unsigned victim(unsigned set, std::uint64_t allowed_mask) override;

  private:
    Rng &rng_;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_REPLACEMENT_HH
