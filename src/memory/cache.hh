/**
 * @file
 * Set-associative cache array (tags + state only; data is functional
 * and lives in MainMemory). Supports the mechanisms CleanupSpec needs:
 * speculative-install marking, targeted invalidation, restoration of a
 * victim into the exact way a transient fill displaced it from, NoMo
 * way partitioning, random replacement, and randomized (CEASER-style)
 * indexing.
 */

#ifndef UNXPEC_MEMORY_CACHE_HH
#define UNXPEC_MEMORY_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "memory/address_map.hh"
#include "memory/cache_line.hh"
#include "memory/mshr.hh"
#include "memory/replacement.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace unxpec {

/** Result of installing a fill. */
struct FillResult
{
    unsigned set = 0;
    unsigned way = 0;
    Addr victimLine = kAddrInvalid;
    bool victimValid = false;
    bool victimDirty = false;
    bool victimSpeculative = false;
};

/** One level of the cache hierarchy. */
class Cache
{
  public:
    Cache(const CacheConfig &cfg, Rng &rng, std::uint64_t index_key);

    /** Line lookup without side effects (nullptr on miss). */
    const CacheLine *probe(Addr line_addr) const;
    CacheLine *probeMutable(Addr line_addr);

    /** True when the line is resident and its fill has landed. */
    bool present(Addr line_addr, Cycle now) const;

    /** Record a hit for the replacement policy. */
    void touch(Addr line_addr);

    /**
     * Install a line, evicting a victim if every allowed way is valid.
     * Invalid ways are preferred; the NoMo partition restricts the
     * candidate ways per security domain: domain 0 (the owning
     * thread) may not touch the reserved ways, which belong to
     * domain 1 (the SMT sibling). With no reservation both domains
     * share every way.
     */
    FillResult install(Addr line_addr, Cycle fill_cycle, bool speculative,
                       SeqNum installer, unsigned domain = 0);

    /** Place a line into a specific way (restoration / inflight undo). */
    void installAt(unsigned set, unsigned way, Addr line_addr, bool dirty,
                   Cycle fill_cycle);

    /** Invalidate a resident line. @return true when it was present. */
    bool invalidate(Addr line_addr);

    /** Invalidate the line in a specific way if it still matches. */
    bool invalidateAt(unsigned set, unsigned way, Addr line_addr);

    /** Mark a resident line dirty (write hit). */
    void markDirty(Addr line_addr);

    /** Clear the speculative bit once the installer commits. */
    void commitSpeculative(Addr line_addr, SeqNum installer);

    /** Set index of a line address under this cache's index function. */
    unsigned setOf(Addr line_addr) const;

    /** Number of valid lines currently in a set. */
    unsigned setOccupancy(unsigned set) const;

    /** All resident line addresses, sorted (for snapshot testing). */
    std::vector<Addr> residentLines() const;

    /** Drop all content and outstanding misses (cold cache). */
    void reset();

    MshrFile &mshr() { return mshr_; }
    const MshrFile &mshr() const { return mshr_; }
    const CacheConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }

    Counter &hits() { return hits_; }
    Counter &misses() { return misses_; }

  private:
    std::uint64_t allowedMask(unsigned domain) const;
    CacheLine &line(unsigned set, unsigned way);
    const CacheLine &line(unsigned set, unsigned way) const;

    CacheConfig cfg_;
    unsigned numSets_;
    std::vector<CacheLine> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;
    std::unique_ptr<IndexFunction> index_;
    MshrFile mshr_;

    StatGroup stats_;
    Counter &hits_;
    Counter &misses_;
    Counter &evictions_;
    Counter &invalidations_;
    Counter &restores_;

    friend class MemoryHierarchy;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_CACHE_HH
