/**
 * @file
 * Set-associative cache array (tags + state only; data is functional
 * and lives in MainMemory). Supports the mechanisms CleanupSpec needs:
 * speculative-install marking, targeted invalidation, restoration of a
 * victim into the exact way a transient fill displaced it from, NoMo
 * way partitioning, random replacement, and randomized (CEASER-style)
 * indexing.
 *
 * Hot-path layout: tags live in their own contiguous array (SoA) so
 * probe() scans one cache line of simulator memory per set instead of
 * striding across full CacheLine records; per-way metadata stays in
 * the CacheLine array that probe() returns pointers into. Index and
 * replacement dispatch are devirtualized (SetIndexer /
 * ReplacementState) so the common modulo+LRU case inlines.
 */

#ifndef UNXPEC_MEMORY_CACHE_HH
#define UNXPEC_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

#include "memory/address_map.hh"
#include "memory/cache_line.hh"
#include "memory/mshr.hh"
#include "memory/replacement.hh"
#include "sim/annotate.hh"
#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace unxpec {

class Tracer;

/** Result of installing a fill. */
struct FillResult
{
    unsigned set = 0;
    unsigned way = 0;
    Addr victimLine = kAddrInvalid;
    bool victimValid = false;
    bool victimDirty = false;
    bool victimSpeculative = false;
};

/** One level of the cache hierarchy. */
class Cache
{
  public:
    /**
     * `arena` (optional) backs the tag/metadata arrays and the MSHR
     * file, laying one trial's hot state contiguously; null falls back
     * to the heap (standalone caches in tests and benches).
     */
    Cache(const CacheConfig &cfg, Rng &rng, std::uint64_t index_key,
          Arena *arena = nullptr);

    /** Line lookup without side effects (nullptr on miss). */
    const CacheLine *
    probe(Addr line_addr) const
    {
        const int way = findWay(line_addr);
        if (way < 0)
            return nullptr;
        return &lines_[static_cast<std::size_t>(index_.set(line_addr)) *
                           cfg_.ways +
                       static_cast<unsigned>(way)];
    }

    CacheLine *
    probeMutable(Addr line_addr)
    {
        return const_cast<CacheLine *>(probe(line_addr));
    }

    /** Hit record of a combined lookup (see lookup()). */
    struct LookupResult
    {
        CacheLine *line = nullptr; //!< nullptr on miss
        unsigned set = 0;
        unsigned way = 0;
    };

    /**
     * Single-scan lookup for the hierarchy hot path: one set
     * computation and one tag scan yield the line *and* its (set, way)
     * coordinates, so a hit can touch the replacement state and mutate
     * metadata without re-probing.
     */
    LookupResult
    lookup(Addr line_addr)
    {
        LookupResult result;
        result.set = index_.set(line_addr);
        const int way = findWayInSet(result.set, line_addr);
        if (way >= 0) {
            result.way = static_cast<unsigned>(way);
            result.line = &lines_[static_cast<std::size_t>(result.set) *
                                      cfg_.ways +
                                  result.way];
        }
        return result;
    }

    /** Replacement-policy hit update using lookup() coordinates. */
    void touchAt(unsigned set, unsigned way) { repl_.touch(set, way); }

    /** True when the line is resident and its fill has landed. */
    bool
    present(Addr line_addr, Cycle now) const
    {
        const CacheLine *hit = probe(line_addr);
        return hit != nullptr && hit->fillCycle <= now;
    }

    /** Record a hit for the replacement policy. */
    void
    touch(Addr line_addr)
    {
        const int way = findWay(line_addr);
        if (way >= 0)
            repl_.touch(index_.set(line_addr), static_cast<unsigned>(way));
    }

    /**
     * Install a line, evicting a victim if every allowed way is valid.
     * Invalid ways are preferred; the NoMo partition restricts the
     * candidate ways per security domain: domain 0 (the owning
     * thread) may not touch the reserved ways, which belong to
     * domain 1 (the SMT sibling). With no reservation both domains
     * share every way.
     */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox")
    FillResult install(Addr line_addr, Cycle fill_cycle, bool speculative,
                       SeqNum installer, unsigned domain = 0);

    /** Place a line into a specific way (restoration / inflight undo). */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    void installAt(unsigned set, unsigned way, Addr line_addr, bool dirty,
                   Cycle fill_cycle);

    /** Invalidate a resident line. Serves both speculative-era activity
     *  (shared-L2 back-invalidation, remote write invalidation) and the
     *  cleanup walks, hence the dual registration. */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox")
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    bool invalidate(Addr line_addr);

    /** Invalidate the line in a specific way if it still matches. */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    bool invalidateAt(unsigned set, unsigned way, Addr line_addr);

    /** Mark a resident line dirty (write hit; stores are committed). */
    UNXPEC_TRANSITION("commit")
    void markDirty(Addr line_addr);

    /** Clear the speculative bit once the installer commits. */
    UNXPEC_TRANSITION("commit")
    void commitSpeculative(Addr line_addr, SeqNum installer);

    /** Set index of a line address under this cache's index function. */
    unsigned setOf(Addr line_addr) const { return index_.set(line_addr); }

    /** Number of valid lines currently in a set. */
    unsigned setOccupancy(unsigned set) const;

    /** All resident line addresses, sorted (for snapshot testing). */
    std::vector<Addr> residentLines() const;

    /**
     * Cross-check the SoA fast-path layout against the line metadata
     * (sim/audit.hh): tag mirror, set placement, duplicate tags,
     * speculative-marking coherence, LRU stamp ordering, and MSHR
     * consistency with fills in flight. Throws AuditError.
     */
    void auditInvariants(Cycle now) const;

    /** Drop all content and outstanding misses (cold cache). */
    UNXPEC_TRANSITION("reset")
    void reset();

    /**
     * Restore freshly-constructed state under a new index key without
     * reallocating the arrays: cold content, fresh replacement
     * history, re-derived CEASER keys, zeroed statistics (Core::reset).
     */
    UNXPEC_TRANSITION("reset")
    void reseed(std::uint64_t index_key);

    MshrFile &mshr() { return mshr_; }
    const MshrFile &mshr() const { return mshr_; }
    const CacheConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }

    /**
     * Event tracer for fill/evict/invalidate/restore events (nullptr =
     * off). `level` stamps the events: 0 = L1I, 1 = L1D, 2 = L2.
     */
    void
    setTracer(Tracer *tracer, std::uint8_t level)
    {
        tracer_ = tracer;
        traceLevel_ = level;
    }

    Counter &hits() { return hits_; }
    Counter &misses() { return misses_; }

  private:
    /**
     * Way holding `line_addr`, -1 on miss. The scan touches only the
     * contiguous tag array; invalid ways hold kAddrInvalid, which no
     * line-aligned address can equal, so no valid-bit check is needed.
     */
    int
    findWay(Addr line_addr) const
    {
        return findWayInSet(index_.set(line_addr), line_addr);
    }

    int
    findWayInSet(unsigned set, Addr line_addr) const
    {
        if (line_addr == kAddrInvalid)
            return -1;
        const Addr *tags =
            tags_.data() + static_cast<std::size_t>(set) * cfg_.ways;
        for (unsigned way = 0; way < cfg_.ways; ++way) {
            if (tags[way] == line_addr)
                return static_cast<int>(way);
        }
        return -1;
    }

    Addr &tag(unsigned set, unsigned way);
    CacheLine &line(unsigned set, unsigned way);
    const CacheLine &line(unsigned set, unsigned way) const;

    CacheConfig cfg_;
    unsigned numSets_;
    /** Transient installs land in both arrays; the tags are what a
     *  Flush+Reload receiver times, so they are speculative state the
     *  undo must restore exactly. */
    UNXPEC_SPEC_STATE ArenaVector<Addr> tags_; //!< SoA tags (probe scan)
    UNXPEC_SPEC_STATE ArenaVector<CacheLine> lines_; //!< per-way metadata
    ReplacementState repl_;
    SetIndexer index_;
    MshrFile mshr_;
    /** Allowed-way masks per security domain (depends only on config). */
    std::uint64_t allowedMask_[2];
    Tracer *tracer_ = nullptr;
    std::uint8_t traceLevel_ = 0;

    StatGroup stats_;
    Counter &hits_;
    Counter &misses_;
    Counter &evictions_;
    Counter &invalidations_;
    Counter &restores_;

    friend class MemoryHierarchy;
    /** Test-only corruption hook for proving the auditor fires. */
    friend struct AuditTap;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_CACHE_HH
