#include "memory/hierarchy.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/trace.hh"

namespace unxpec {

namespace {

/** Trace levels stamped on cache events (tracks in the exporter). */
constexpr std::uint8_t kTraceL1I = 0;
constexpr std::uint8_t kTraceL1D = 1;
constexpr std::uint8_t kTraceL2 = 2;

/** Access-summary span: request at `now`, data at `record.ready`. */
inline void
traceAccess(Tracer *tracer, TraceKind kind, std::uint8_t level,
            const MemAccessRecord &record, Cycle now)
{
    if (!(kTraceEnabled && tracer != nullptr &&
          tracer->enabled(kTraceCatCache))) {
        return;
    }
    std::uint16_t flags = 0;
    if (record.write)
        flags |= kTraceFlagWrite;
    if (record.speculative)
        flags |= kTraceFlagSpeculative;
    if (record.invisible)
        flags |= kTraceFlagInvisible;
    tracer->span(kind, now, record.ready - now, record.seq,
                 record.lineAddr, 0, level, flags);
}

} // namespace

void
MemoryHierarchy::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    l1i_.setTracer(tracer, kTraceL1I);
    l1d_.setTracer(tracer, kTraceL1D);
    // A shared L2 keeps the owning core's tracer; events on it would
    // otherwise be claimed by whichever core attached last.
    if (ownsShared())
        l2_.setTracer(tracer, kTraceL2);
}

MemoryHierarchy::MemoryHierarchy(const SystemConfig &cfg, Rng &rng,
                                 Arena *arena)
    : cfg_(cfg),
      rng_(rng),
      mem_(cfg.memory, rng),
      l1i_(cfg.l1i, rng, cfg.seed * 0x9e37u + 1, arena),
      l1d_(cfg.l1d, rng, cfg.seed * 0x9e37u + 2, arena),
      l2_(cfg.l2, rng, cfg.seed * 0x9e37u + 3, arena)
{
}

void
MemoryHierarchy::bindShared(Cache *l2, MainMemory *mem)
{
    l2p_ = l2;
    memp_ = mem;
}

void
MemoryHierarchy::setCoherence(CoherenceEngine *engine, unsigned core_id)
{
    coh_ = engine;
    coreId_ = core_id;
    if (engine != nullptr)
        engine->attach(core_id, this);
}

void
MemoryHierarchy::writeHit(CacheLine &hit)
{
    hit.dirty = true;
    // S -> M upgrade: other cores' copies must go first.
    if (coh_ != nullptr && hit.coh == CohState::Shared)
        coh_->invalidateRemote(coreId_, hit.lineAddr);
    coh::onLocalWrite(hit);
}

MemAccessRecord
MemoryHierarchy::access(Addr addr, Cycle now, bool write, bool speculative,
                        SeqNum seq)
{
    const Addr line = lineAlign(addr);

    MemAccessRecord record;
    record.lineAddr = line;
    record.write = write;
    record.speculative = speculative;
    record.seq = seq;
    record.issued = now;

    l1d_.mshr().release(now);
    l2p_->mshr().release(now);

    // --- L1D lookup ------------------------------------------------
    // One combined lookup: set computation and tag scan happen once,
    // and the hit path reuses the (set, way) coordinates instead of
    // re-probing for touch/markDirty.
    if (const auto l1look = l1d_.lookup(line); l1look.line != nullptr) {
        CacheLine *hit = l1look.line;
        if (hit->fillCycle <= now) {
            // Plain hit.
            record.l1Hit = true;
            record.ready = now + cfg_.l1d.hitLatency;
            ++l1d_.hits();
            l1d_.touchAt(l1look.set, l1look.way);
            if (write)
                writeHit(*hit);
            traceAccess(tracer_, TraceKind::CacheHit, kTraceL1D, record,
                        now);
            return record;
        }
        // Line is inflight: merge with the outstanding fill.
        if (MshrEntry *entry = l1d_.mshr().find(line)) {
            ++entry->targets;
            record.merged = true;
            record.ready = std::max(entry->readyCycle,
                                    now + cfg_.l1d.hitLatency);
            ++l1d_.misses();
            if (write)
                writeHit(*hit);
            traceAccess(tracer_, TraceKind::MshrMerge, kTraceL1D, record,
                        now);
            return record;
        }
        // Inflight line whose MSHR entry was displaced: wait for the
        // fill directly.
        record.merged = true;
        record.ready = std::max(hit->fillCycle, now + cfg_.l1d.hitLatency);
        ++l1d_.misses();
        if (write)
            writeHit(*hit);
        traceAccess(tracer_, TraceKind::MshrMerge, kTraceL1D, record, now);
        return record;
    }

    ++l1d_.misses();

    // MSHR back-pressure: a full file delays the new miss until the
    // earliest outstanding fill retires.
    Cycle base = now;
    if (l1d_.mshr().full()) {
        base = std::max(base, l1d_.mshr().earliestReady());
        l1d_.mshr().release(base);
    }

    Cycle fill_ready = base + cfg_.l1d.hitLatency; // L1 lookup cost

    // --- cross-core snoop (Machine configs only) --------------------
    // Other cores' L1s are probed before the shared L2: a committed
    // remote copy is downgraded (and recorded for squash-undo), a
    // defended speculative copy turns the whole request into a dummy
    // miss, and a write drops every remote copy.
    bool shared_fill = false;
    if (coh_ != nullptr) {
        const CoherenceEngine::SnoopResult snoop =
            coh_->snoop(coreId_, line, base, write, speculative, record);
        if (snoop.dummyMiss) {
            record.dummyMiss = true;
            record.ready =
                fill_ready + cfg_.l2.hitLatency + memp_->accessLatency();
            traceAccess(tracer_, TraceKind::CacheMiss, kTraceL2, record,
                        now);
            return record;
        }
        if (snoop.served) {
            record.servedBySnoop = true;
            record.snoopOwner = static_cast<std::uint8_t>(snoop.owner);
            shared_fill = true;
        }
    }

    // --- L2 lookup --------------------------------------------------
    if (const auto l2look = l2p_->lookup(line); l2look.line != nullptr) {
        CacheLine *l2hit = l2look.line;
        if (l2hit->fillCycle <= base + cfg_.l1d.hitLatency) {
            if (coh_ != nullptr &&
                coh_->hideSharedSpeculative(*l2hit, line, base)) {
                // The installing core's L1 copy is gone but its
                // speculative L2 line survives: still invisible.
                record.dummyMiss = true;
                ++l2p_->misses();
                record.ready = fill_ready + cfg_.l2.hitLatency +
                               memp_->accessLatency();
                traceAccess(tracer_, TraceKind::CacheMiss, kTraceL2,
                            record, now);
                return record;
            }
            record.l2Hit = true;
            fill_ready += cfg_.l2.hitLatency;
            ++l2p_->hits();
            l2p_->touchAt(l2look.set, l2look.way);
        } else if (MshrEntry *entry = l2p_->mshr().find(line)) {
            ++entry->targets;
            record.merged = true;
            fill_ready = std::max(entry->readyCycle,
                                  fill_ready + cfg_.l2.hitLatency);
            ++l2p_->misses();
        } else {
            // Inflight L2 line whose MSHR entry was displaced.
            record.merged = true;
            fill_ready = std::max(l2hit->fillCycle,
                                  fill_ready + cfg_.l2.hitLatency);
            ++l2p_->misses();
        }
    } else {
        ++l2p_->misses();
        if (l2p_->mshr().full()) {
            const Cycle wait = l2p_->mshr().earliestReady();
            fill_ready = std::max(fill_ready, wait);
            l2p_->mshr().release(fill_ready);
        }
        fill_ready += cfg_.l2.hitLatency + memp_->accessLatency();

        // Install into L2 (eagerly; fillCycle marks actual arrival).
        const FillResult l2fill = l2p_->install(line, fill_ready,
                                                speculative, seq);
        record.l2Installed = true;
        record.l2Set = l2fill.set;
        record.l2Way = l2fill.way;
        record.l2Victim = l2fill.victimLine;
        record.l2VictimValid = l2fill.victimValid;
        if (!l2p_->mshr().full())
            l2p_->mshr().allocate(line, fill_ready, speculative, seq);
        // Inclusion: the displaced shared-L2 line may live in other
        // cores' L1s.
        if (coh_ != nullptr && l2fill.victimValid)
            coh_->backInvalidate(l2fill.victimLine);
    }

    // --- L1D fill ---------------------------------------------------
    const FillResult l1fill = l1d_.install(line, fill_ready, speculative,
                                           seq);
    record.l1Installed = true;
    record.l1Set = l1fill.set;
    record.l1Way = l1fill.way;
    record.l1Victim = l1fill.victimLine;
    record.l1VictimValid = l1fill.victimValid;
    record.l1VictimDirty = l1fill.victimDirty;
    if (!l1d_.mshr().full()) {
        MshrEntry &entry = l1d_.mshr().allocate(line, fill_ready,
                                                speculative, seq);
        entry.victimLine = l1fill.victimLine;
        entry.victimValid = l1fill.victimValid;
        entry.victimDirty = l1fill.victimDirty;
    }

    if (shared_fill && !write) {
        // A remote L1 still holds the line: both copies are S now.
        coh::onSharedFill(l1d_.line(l1fill.set, l1fill.way));
    }

    if (write)
        l1d_.markDirty(line);

    record.ready = fill_ready;
    // L2 hit, merged with an outstanding L2 fill, or a full miss to
    // memory — in every case the L1 is being filled.
    traceAccess(tracer_,
                record.l2Hit      ? TraceKind::CacheHit
                : record.merged   ? TraceKind::MshrMerge
                                  : TraceKind::CacheMiss,
                kTraceL2, record, now);
    return record;
}

MemAccessRecord
MemoryHierarchy::accessInvisible(Addr addr, Cycle now, SeqNum seq)
{
    const Addr line = lineAlign(addr);

    MemAccessRecord record;
    record.lineAddr = line;
    record.speculative = true;
    record.invisible = true;
    record.seq = seq;
    record.issued = now;

    if (const CacheLine *hit = l1d_.probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l1Hit = true;
        record.ready = now + cfg_.l1d.hitLatency;
        traceAccess(tracer_, TraceKind::CacheHit, kTraceL1D, record, now);
        return record;
    }
    Cycle ready = now + cfg_.l1d.hitLatency;
    if (const CacheLine *hit = l2p_->probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l2Hit = true;
        record.ready = ready + cfg_.l2.hitLatency;
        traceAccess(tracer_, TraceKind::CacheHit, kTraceL2, record, now);
        return record;
    }
    record.ready = ready + cfg_.l2.hitLatency + memp_->accessLatency();
    traceAccess(tracer_, TraceKind::CacheMiss, kTraceL2, record, now);
    return record;
}

MemAccessRecord
MemoryHierarchy::accessSafeSpec(Addr addr, Cycle now, SeqNum seq)
{
    const Addr line = lineAlign(addr);

    MemAccessRecord record;
    record.lineAddr = line;
    record.speculative = true;
    record.seq = seq;
    record.issued = now;

    // Committed L1 hit: served in place. Probe-only — even the
    // replacement state is left alone, so a squash has nothing to undo.
    if (const CacheLine *hit = l1d_.probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l1Hit = true;
        record.ready = now + cfg_.l1d.hitLatency;
        traceAccess(tracer_, TraceKind::CacheHit, kTraceL1D, record, now);
        return record;
    }

    record.shadow = true;

    // Merge with an earlier speculative fill of the same line.
    if (const ShadowL1::Entry *entry = shadow_.find(line)) {
        record.merged = true;
        record.ready = std::max(entry->readyCycle,
                                now + cfg_.l1d.hitLatency);
        traceAccess(tracer_, TraceKind::MshrMerge, kTraceL1D, record, now);
        return record;
    }

    // Miss: compute the fill latency from probes and park the fill in
    // the shadow L1. The caches never see the request.
    Cycle ready = now + cfg_.l1d.hitLatency;
    if (const CacheLine *hit = l2p_->probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l2Hit = true;
        ready += cfg_.l2.hitLatency;
    } else {
        ready += cfg_.l2.hitLatency + memp_->accessLatency();
    }
    shadow_.fill(line, ready, seq);
    record.ready = ready;
    traceAccess(tracer_,
                record.l2Hit ? TraceKind::CacheHit : TraceKind::CacheMiss,
                kTraceL2, record, now);
    return record;
}

MemAccessRecord
MemoryHierarchy::accessCacheSquash(Addr addr, Cycle now, SeqNum seq)
{
    const Addr line = lineAlign(addr);

    MemAccessRecord record;
    record.lineAddr = line;
    record.speculative = true;
    record.seq = seq;
    record.issued = now;

    l1d_.mshr().release(now);

    // Committed L1 hit: served in place, probe-only (see accessSafeSpec).
    if (const CacheLine *hit = l1d_.probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l1Hit = true;
        record.ready = now + cfg_.l1d.hitLatency;
        traceAccess(tracer_, TraceKind::CacheHit, kTraceL1D, record, now);
        return record;
    }

    record.mshrOnly = true;

    // Merge with a parked fill of the same line. The entry keeps its
    // original installer: that load's own squash record cancels it, and
    // an installer older than the squash keeps its fill legitimately.
    if (MshrEntry *entry = l1d_.mshr().find(line)) {
        ++entry->targets;
        record.merged = true;
        record.ready = std::max(entry->readyCycle,
                                now + cfg_.l1d.hitLatency);
        traceAccess(tracer_, TraceKind::MshrMerge, kTraceL1D, record, now);
        return record;
    }

    // Miss: compute the fill latency and park it in a cancellable MSHR
    // entry. No tags are installed anywhere — the line only enters the
    // caches if the load commits (commitPendingFill).
    Cycle base = now;
    if (l1d_.mshr().full()) {
        base = std::max(base, l1d_.mshr().earliestReady());
        l1d_.mshr().release(base);
    }
    Cycle fill_ready = base + cfg_.l1d.hitLatency;
    if (const CacheLine *hit = l2p_->probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l2Hit = true;
        fill_ready += cfg_.l2.hitLatency;
    } else {
        fill_ready += cfg_.l2.hitLatency + memp_->accessLatency();
    }
    l1d_.mshr().allocate(line, fill_ready, true, seq);
    record.ready = fill_ready;
    traceAccess(tracer_,
                record.l2Hit ? TraceKind::CacheHit : TraceKind::CacheMiss,
                kTraceL2, record, now);
    return record;
}

void
MemoryHierarchy::promoteCommitted(Addr line, Cycle now)
{
    if (const CacheLine *hit = l1d_.probe(line); hit != nullptr)
        return;
    if (l2p_->probe(line) == nullptr) {
        const FillResult l2fill = l2p_->install(line, now, false, kSeqNone);
        if (coh_ != nullptr && l2fill.victimValid)
            coh_->backInvalidate(l2fill.victimLine);
    }
    l1d_.install(line, now, false, kSeqNone);
}

void
MemoryHierarchy::commitShadow(const MemAccessRecord &record, Cycle now)
{
    if (!record.shadow)
        return;
    // Only the load whose entry is still resident promotes; a line the
    // FIFO dropped is simply refetched on the next demand access.
    if (shadow_.promote(record.lineAddr))
        promoteCommitted(record.lineAddr, now);
}

bool
MemoryHierarchy::discardShadow(const MemAccessRecord &record)
{
    if (!record.shadow)
        return false;
    return shadow_.discard(record.lineAddr);
}

void
MemoryHierarchy::commitPendingFill(const MemAccessRecord &record, Cycle now)
{
    if (!record.mshrOnly)
        return;
    l1d_.mshr().cancel(record.lineAddr, record.seq);
    promoteCommitted(record.lineAddr, now);
}

bool
MemoryHierarchy::cancelPendingFill(const MemAccessRecord &record)
{
    if (!record.mshrOnly)
        return false;
    return l1d_.mshr().cancel(record.lineAddr, record.seq);
}

Cycle
MemoryHierarchy::fetchReady(Addr addr, Cycle now)
{
    const Addr line = lineAlign(addr);

    if (const auto look = l1i_.lookup(line); look.line != nullptr) {
        // Resident (possibly still filling): data at the later of the
        // lookup and the fill arrival.
        ++l1i_.hits();
        l1i_.touchAt(look.set, look.way);
        return std::max(now + cfg_.l1i.hitLatency, look.line->fillCycle);
    }
    ++l1i_.misses();

    Cycle ready = now + cfg_.l1i.hitLatency;
    if (const auto l2look = l2p_->lookup(line); l2look.line != nullptr) {
        ready = std::max(ready + cfg_.l2.hitLatency, l2look.line->fillCycle);
        ++l2p_->hits();
        l2p_->touchAt(l2look.set, l2look.way);
    } else {
        ++l2p_->misses();
        ready += cfg_.l2.hitLatency + memp_->accessLatency();
        const FillResult l2fill = l2p_->install(line, ready, false,
                                                kSeqNone);
        if (coh_ != nullptr && l2fill.victimValid)
            coh_->backInvalidate(l2fill.victimLine);
    }
    l1i_.install(line, ready, false, kSeqNone);
    // Only misses are traced on the I-side: steady-state hits would
    // flood the ring at one event per fetched instruction.
    if (kTraceEnabled && tracer_ != nullptr &&
        tracer_->enabled(kTraceCatCache)) {
        tracer_->span(TraceKind::CacheMiss, now, ready - now, kSeqNone,
                      line, 0, kTraceL1I);
    }
    return ready;
}

bool
MemoryHierarchy::flushLine(Addr addr)
{
    const Addr line = lineAlign(addr);
    // clflush is architecturally machine-wide: with an engine attached
    // every core's copy goes, not just this core's.
    if (coh_ != nullptr)
        return coh_->flushAll(line);
    bool dirty = false;
    if (const CacheLine *hit = l1d_.probe(line))
        dirty = dirty || hit->dirty;
    if (const CacheLine *hit = l2_.probe(line))
        dirty = dirty || hit->dirty;
    l1d_.invalidate(line);
    l2_.invalidate(line);
    l1i_.invalidate(line);
    l1d_.mshr().squash(line);
    l2_.mshr().squash(line);
    return dirty;
}

void
MemoryHierarchy::commitInstall(const MemAccessRecord &record)
{
    if (record.l1Installed)
        l1d_.commitSpeculative(record.lineAddr, record.seq);
    if (record.l2Installed)
        l2p_->commitSpeculative(record.lineAddr, record.seq);
}

void
MemoryHierarchy::undoInflight(const MemAccessRecord &record)
{
    if (record.l1Installed &&
        l1d_.invalidateAt(record.l1Set, record.l1Way, record.lineAddr)) {
        if (record.l1VictimValid) {
            l1d_.installAt(record.l1Set, record.l1Way, record.l1Victim,
                           record.l1VictimDirty, 0);
            if (coh_ != nullptr)
                coh_->ensureInclusion(record.l1Victim, 0);
        }
    }
    if (record.l2Installed &&
        l2p_->invalidateAt(record.l2Set, record.l2Way, record.lineAddr)) {
        if (record.l2VictimValid)
            l2p_->installAt(record.l2Set, record.l2Way, record.l2Victim,
                            false, 0);
    }
    l1d_.mshr().squash(record.lineAddr);
    l2p_->mshr().squash(record.lineAddr);
}

bool
MemoryHierarchy::cleanupInvalidateL1(const MemAccessRecord &record)
{
    return l1d_.invalidateAt(record.l1Set, record.l1Way, record.lineAddr);
}

bool
MemoryHierarchy::cleanupInvalidateL2(const MemAccessRecord &record)
{
    return l2p_->invalidateAt(record.l2Set, record.l2Way, record.lineAddr);
}

void
MemoryHierarchy::cleanupRestoreL1(const MemAccessRecord &record, Cycle now)
{
    // The victim's data is refetched from L2/memory; only the tag state
    // matters here. Put it back into the way the transient fill used.
    l1d_.installAt(record.l1Set, record.l1Way, record.l1Victim,
                   record.l1VictimDirty, now);
    ++l1d_.stats().counter("restores");
    if (coh_ != nullptr)
        coh_->ensureInclusion(record.l1Victim, now);
}

MemoryHierarchy::CrossCoreProbe
MemoryHierarchy::crossCoreRead(Addr addr, Cycle now)
{
    // In a Machine the probe is a real request from a receiver core;
    // standalone hierarchies keep the historical single-hierarchy
    // semantics bit-for-bit (probeHierarchy).
    if (coh_ != nullptr && coh_->numCores() > 1) {
        return coh_->remoteRead((coreId_ + 1) % coh_->numCores(), addr,
                                now);
    }
    return probeHierarchy(*this, addr, now);
}

void
MemoryHierarchy::undoSnoopDowngrade(const MemAccessRecord &record)
{
    if (coh_ != nullptr)
        coh_->undoSnoopDowngrade(record);
}

void
MemoryHierarchy::cleanupRestoreL2(const MemAccessRecord &record, Cycle now)
{
    l2p_->installAt(record.l2Set, record.l2Way, record.l2Victim, false,
                    now);
    ++l2p_->stats().counter("restores");
}

void
MemoryHierarchy::dropSpeculativeMark(const MemAccessRecord &record, bool l1,
                                     bool l2)
{
    if (l1 && record.l1Installed) {
        if (CacheLine *line = l1d_.probeMutable(record.lineAddr)) {
            line->speculative = false;
            line->installer = kSeqNone;
        }
    }
    if (l2 && record.l2Installed) {
        if (CacheLine *line = l2p_->probeMutable(record.lineAddr)) {
            line->speculative = false;
            line->installer = kSeqNone;
        }
    }
}

void
MemoryHierarchy::resetCaches()
{
    l1i_.reset();
    l1d_.reset();
    if (ownsShared())
        l2_.reset();
    shadow_.clear();
}

void
MemoryHierarchy::reseed(std::uint64_t seed)
{
    cfg_.seed = seed;
    if (ownsShared())
        mem_.reset(cfg_.memory);
    // Same key-derivation as the constructor so reseed(s) is
    // indistinguishable from construction with cfg.seed == s.
    l1i_.reseed(seed * 0x9e37u + 1);
    l1d_.reseed(seed * 0x9e37u + 2);
    if (ownsShared())
        l2_.reseed(seed * 0x9e37u + 3);
    shadow_.clear();
}

} // namespace unxpec
