#include "memory/hierarchy.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/trace.hh"

namespace unxpec {

namespace {

/** Trace levels stamped on cache events (tracks in the exporter). */
constexpr std::uint8_t kTraceL1I = 0;
constexpr std::uint8_t kTraceL1D = 1;
constexpr std::uint8_t kTraceL2 = 2;

/** Access-summary span: request at `now`, data at `record.ready`. */
inline void
traceAccess(Tracer *tracer, TraceKind kind, std::uint8_t level,
            const MemAccessRecord &record, Cycle now)
{
    if (!(kTraceEnabled && tracer != nullptr &&
          tracer->enabled(kTraceCatCache))) {
        return;
    }
    std::uint16_t flags = 0;
    if (record.write)
        flags |= kTraceFlagWrite;
    if (record.speculative)
        flags |= kTraceFlagSpeculative;
    if (record.invisible)
        flags |= kTraceFlagInvisible;
    tracer->span(kind, now, record.ready - now, record.seq,
                 record.lineAddr, 0, level, flags);
}

} // namespace

void
MemoryHierarchy::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    l1i_.setTracer(tracer, kTraceL1I);
    l1d_.setTracer(tracer, kTraceL1D);
    l2_.setTracer(tracer, kTraceL2);
}

MemoryHierarchy::MemoryHierarchy(const SystemConfig &cfg, Rng &rng)
    : cfg_(cfg),
      rng_(rng),
      mem_(cfg.memory, rng),
      l1i_(cfg.l1i, rng, cfg.seed * 0x9e37u + 1),
      l1d_(cfg.l1d, rng, cfg.seed * 0x9e37u + 2),
      l2_(cfg.l2, rng, cfg.seed * 0x9e37u + 3)
{
}

MemAccessRecord
MemoryHierarchy::access(Addr addr, Cycle now, bool write, bool speculative,
                        SeqNum seq)
{
    const Addr line = lineAlign(addr);

    MemAccessRecord record;
    record.lineAddr = line;
    record.write = write;
    record.speculative = speculative;
    record.seq = seq;
    record.issued = now;

    l1d_.mshr().release(now);
    l2_.mshr().release(now);

    // --- L1D lookup ------------------------------------------------
    // One combined lookup: set computation and tag scan happen once,
    // and the hit path reuses the (set, way) coordinates instead of
    // re-probing for touch/markDirty.
    if (const auto l1look = l1d_.lookup(line); l1look.line != nullptr) {
        CacheLine *hit = l1look.line;
        if (hit->fillCycle <= now) {
            // Plain hit.
            record.l1Hit = true;
            record.ready = now + cfg_.l1d.hitLatency;
            ++l1d_.hits();
            l1d_.touchAt(l1look.set, l1look.way);
            if (write) {
                hit->dirty = true;
                hit->coh = CohState::Modified;
            }
            traceAccess(tracer_, TraceKind::CacheHit, kTraceL1D, record,
                        now);
            return record;
        }
        // Line is inflight: merge with the outstanding fill.
        if (MshrEntry *entry = l1d_.mshr().find(line)) {
            ++entry->targets;
            record.merged = true;
            record.ready = std::max(entry->readyCycle,
                                    now + cfg_.l1d.hitLatency);
            ++l1d_.misses();
            if (write) {
                hit->dirty = true;
                hit->coh = CohState::Modified;
            }
            traceAccess(tracer_, TraceKind::MshrMerge, kTraceL1D, record,
                        now);
            return record;
        }
        // Inflight line whose MSHR entry was displaced: wait for the
        // fill directly.
        record.merged = true;
        record.ready = std::max(hit->fillCycle, now + cfg_.l1d.hitLatency);
        ++l1d_.misses();
        if (write) {
            hit->dirty = true;
            hit->coh = CohState::Modified;
        }
        traceAccess(tracer_, TraceKind::MshrMerge, kTraceL1D, record, now);
        return record;
    }

    ++l1d_.misses();

    // MSHR back-pressure: a full file delays the new miss until the
    // earliest outstanding fill retires.
    Cycle base = now;
    if (l1d_.mshr().full()) {
        base = std::max(base, l1d_.mshr().earliestReady());
        l1d_.mshr().release(base);
    }

    Cycle fill_ready = base + cfg_.l1d.hitLatency; // L1 lookup cost

    // --- L2 lookup --------------------------------------------------
    if (const auto l2look = l2_.lookup(line); l2look.line != nullptr) {
        const CacheLine *l2hit = l2look.line;
        if (l2hit->fillCycle <= base + cfg_.l1d.hitLatency) {
            record.l2Hit = true;
            fill_ready += cfg_.l2.hitLatency;
            ++l2_.hits();
            l2_.touchAt(l2look.set, l2look.way);
        } else if (MshrEntry *entry = l2_.mshr().find(line)) {
            ++entry->targets;
            record.merged = true;
            fill_ready = std::max(entry->readyCycle,
                                  fill_ready + cfg_.l2.hitLatency);
            ++l2_.misses();
        } else {
            // Inflight L2 line whose MSHR entry was displaced.
            record.merged = true;
            fill_ready = std::max(l2hit->fillCycle,
                                  fill_ready + cfg_.l2.hitLatency);
            ++l2_.misses();
        }
    } else {
        ++l2_.misses();
        if (l2_.mshr().full()) {
            const Cycle wait = l2_.mshr().earliestReady();
            fill_ready = std::max(fill_ready, wait);
            l2_.mshr().release(fill_ready);
        }
        fill_ready += cfg_.l2.hitLatency + mem_.accessLatency();

        // Install into L2 (eagerly; fillCycle marks actual arrival).
        const FillResult l2fill = l2_.install(line, fill_ready, speculative,
                                              seq);
        record.l2Installed = true;
        record.l2Set = l2fill.set;
        record.l2Way = l2fill.way;
        record.l2Victim = l2fill.victimLine;
        record.l2VictimValid = l2fill.victimValid;
        if (!l2_.mshr().full())
            l2_.mshr().allocate(line, fill_ready, speculative, seq);
    }

    // --- L1D fill ---------------------------------------------------
    const FillResult l1fill = l1d_.install(line, fill_ready, speculative,
                                           seq);
    record.l1Installed = true;
    record.l1Set = l1fill.set;
    record.l1Way = l1fill.way;
    record.l1Victim = l1fill.victimLine;
    record.l1VictimValid = l1fill.victimValid;
    record.l1VictimDirty = l1fill.victimDirty;
    if (!l1d_.mshr().full()) {
        MshrEntry &entry = l1d_.mshr().allocate(line, fill_ready,
                                                speculative, seq);
        entry.victimLine = l1fill.victimLine;
        entry.victimValid = l1fill.victimValid;
        entry.victimDirty = l1fill.victimDirty;
    }

    if (write)
        l1d_.markDirty(line);

    record.ready = fill_ready;
    // L2 hit, merged with an outstanding L2 fill, or a full miss to
    // memory — in every case the L1 is being filled.
    traceAccess(tracer_,
                record.l2Hit      ? TraceKind::CacheHit
                : record.merged   ? TraceKind::MshrMerge
                                  : TraceKind::CacheMiss,
                kTraceL2, record, now);
    return record;
}

MemAccessRecord
MemoryHierarchy::accessInvisible(Addr addr, Cycle now, SeqNum seq)
{
    const Addr line = lineAlign(addr);

    MemAccessRecord record;
    record.lineAddr = line;
    record.speculative = true;
    record.invisible = true;
    record.seq = seq;
    record.issued = now;

    if (const CacheLine *hit = l1d_.probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l1Hit = true;
        record.ready = now + cfg_.l1d.hitLatency;
        traceAccess(tracer_, TraceKind::CacheHit, kTraceL1D, record, now);
        return record;
    }
    Cycle ready = now + cfg_.l1d.hitLatency;
    if (const CacheLine *hit = l2_.probe(line);
        hit != nullptr && hit->fillCycle <= now) {
        record.l2Hit = true;
        record.ready = ready + cfg_.l2.hitLatency;
        traceAccess(tracer_, TraceKind::CacheHit, kTraceL2, record, now);
        return record;
    }
    record.ready = ready + cfg_.l2.hitLatency + mem_.accessLatency();
    traceAccess(tracer_, TraceKind::CacheMiss, kTraceL2, record, now);
    return record;
}

Cycle
MemoryHierarchy::fetchReady(Addr addr, Cycle now)
{
    const Addr line = lineAlign(addr);

    if (const auto look = l1i_.lookup(line); look.line != nullptr) {
        // Resident (possibly still filling): data at the later of the
        // lookup and the fill arrival.
        ++l1i_.hits();
        l1i_.touchAt(look.set, look.way);
        return std::max(now + cfg_.l1i.hitLatency, look.line->fillCycle);
    }
    ++l1i_.misses();

    Cycle ready = now + cfg_.l1i.hitLatency;
    if (const auto l2look = l2_.lookup(line); l2look.line != nullptr) {
        ready = std::max(ready + cfg_.l2.hitLatency, l2look.line->fillCycle);
        ++l2_.hits();
        l2_.touchAt(l2look.set, l2look.way);
    } else {
        ++l2_.misses();
        ready += cfg_.l2.hitLatency + mem_.accessLatency();
        l2_.install(line, ready, false, kSeqNone);
    }
    l1i_.install(line, ready, false, kSeqNone);
    // Only misses are traced on the I-side: steady-state hits would
    // flood the ring at one event per fetched instruction.
    if (kTraceEnabled && tracer_ != nullptr &&
        tracer_->enabled(kTraceCatCache)) {
        tracer_->span(TraceKind::CacheMiss, now, ready - now, kSeqNone,
                      line, 0, kTraceL1I);
    }
    return ready;
}

bool
MemoryHierarchy::flushLine(Addr addr)
{
    const Addr line = lineAlign(addr);
    bool dirty = false;
    if (const CacheLine *hit = l1d_.probe(line))
        dirty = dirty || hit->dirty;
    if (const CacheLine *hit = l2_.probe(line))
        dirty = dirty || hit->dirty;
    l1d_.invalidate(line);
    l2_.invalidate(line);
    l1i_.invalidate(line);
    l1d_.mshr().squash(line);
    l2_.mshr().squash(line);
    return dirty;
}

void
MemoryHierarchy::commitInstall(const MemAccessRecord &record)
{
    if (record.l1Installed)
        l1d_.commitSpeculative(record.lineAddr, record.seq);
    if (record.l2Installed)
        l2_.commitSpeculative(record.lineAddr, record.seq);
}

void
MemoryHierarchy::undoInflight(const MemAccessRecord &record)
{
    if (record.l1Installed &&
        l1d_.invalidateAt(record.l1Set, record.l1Way, record.lineAddr)) {
        if (record.l1VictimValid) {
            l1d_.installAt(record.l1Set, record.l1Way, record.l1Victim,
                           record.l1VictimDirty, 0);
        }
    }
    if (record.l2Installed &&
        l2_.invalidateAt(record.l2Set, record.l2Way, record.lineAddr)) {
        if (record.l2VictimValid)
            l2_.installAt(record.l2Set, record.l2Way, record.l2Victim,
                          false, 0);
    }
    l1d_.mshr().squash(record.lineAddr);
    l2_.mshr().squash(record.lineAddr);
}

bool
MemoryHierarchy::cleanupInvalidateL1(const MemAccessRecord &record)
{
    return l1d_.invalidateAt(record.l1Set, record.l1Way, record.lineAddr);
}

bool
MemoryHierarchy::cleanupInvalidateL2(const MemAccessRecord &record)
{
    return l2_.invalidateAt(record.l2Set, record.l2Way, record.lineAddr);
}

void
MemoryHierarchy::cleanupRestoreL1(const MemAccessRecord &record, Cycle now)
{
    // The victim's data is refetched from L2/memory; only the tag state
    // matters here. Put it back into the way the transient fill used.
    l1d_.installAt(record.l1Set, record.l1Way, record.l1Victim,
                   record.l1VictimDirty, now);
    ++l1d_.stats().counter("restores");
}

MemoryHierarchy::CrossCoreProbe
MemoryHierarchy::crossCoreRead(Addr addr, Cycle now)
{
    const Addr line = lineAlign(addr);
    const bool protections =
        cfg_.cleanupMode != CleanupMode::UnsafeBaseline;
    const Cycle miss_latency =
        cfg_.l1d.hitLatency + cfg_.l2.hitLatency + mem_.accessLatency();

    CrossCoreProbe probe;
    auto serve_from = [&](Cache &cache, Cycle hit_latency) -> bool {
        CacheLine *hit = cache.probeMutable(line);
        if (hit == nullptr || hit->fillCycle > now)
            return false;
        if (protections && hit->speculative) {
            // Dummy cache miss + delayed downgrade (§II-B).
            hit->pendingDowngrade = true;
            probe.hit = false;
            probe.dummyMiss = true;
            probe.ready = now + miss_latency;
            probe.observed = CohState::Invalid;
            return true;
        }
        if (hit->coh == CohState::Modified ||
            hit->coh == CohState::Exclusive) {
            hit->coh = CohState::Shared;
        }
        probe.hit = true;
        probe.ready = now + hit_latency;
        probe.observed = hit->coh;
        return true;
    };

    if (serve_from(l1d_, cfg_.l1d.hitLatency))
        return probe;
    if (serve_from(l2_, cfg_.l1d.hitLatency + cfg_.l2.hitLatency))
        return probe;

    probe.hit = false;
    probe.ready = now + miss_latency;
    probe.observed = CohState::Invalid;
    return probe;
}

void
MemoryHierarchy::cleanupRestoreL2(const MemAccessRecord &record, Cycle now)
{
    l2_.installAt(record.l2Set, record.l2Way, record.l2Victim, false, now);
    ++l2_.stats().counter("restores");
}

void
MemoryHierarchy::resetCaches()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
}

void
MemoryHierarchy::reseed(std::uint64_t seed)
{
    cfg_.seed = seed;
    mem_.reset(cfg_.memory);
    // Same key-derivation as the constructor so reseed(s) is
    // indistinguishable from construction with cfg.seed == s.
    l1i_.reseed(seed * 0x9e37u + 1);
    l1d_.reseed(seed * 0x9e37u + 2);
    l2_.reseed(seed * 0x9e37u + 3);
}

} // namespace unxpec
