#include "memory/main_memory.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace unxpec {

MainMemory::Page &
MainMemory::page(Addr addr)
{
    const Addr page_number = addr / kPageBytes;
    auto it = pages_.find(page_number);
    if (it == pages_.end())
        it = pages_.emplace(page_number, Page{}).first;
    return it->second;
}

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

std::uint8_t
MainMemory::read8(Addr addr) const
{
    const Page *p = findPage(addr);
    return p == nullptr ? 0 : (*p)[addr % kPageBytes];
}

void
MainMemory::write8(Addr addr, std::uint8_t value)
{
    page(addr)[addr % kPageBytes] = value;
}

std::uint64_t
MainMemory::read64(Addr addr) const
{
    return read(addr, 8);
}

void
MainMemory::write64(Addr addr, std::uint64_t value)
{
    write(addr, value, 8);
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<std::uint64_t>(read8(addr + i)) << (8 * i);
    return value;
}

void
MainMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    for (unsigned i = 0; i < size; ++i)
        write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

Cycle
MainMemory::accessLatency()
{
    double latency = cfg_.accessLatency;
    if (cfg_.jitterSigma > 0.0)
        latency += rng_.gaussian(0.0, cfg_.jitterSigma);
    latency = std::max(1.0, latency);
    return static_cast<Cycle>(std::llround(latency));
}

} // namespace unxpec
