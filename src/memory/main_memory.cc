#include "memory/main_memory.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace unxpec {

MainMemory::Page &
MainMemory::pageFor(Addr page_number)
{
    if (page_number == cachedPageNumber_ && cachedPage_ != nullptr) {
        // The map's pages are never actually const; the cache stores a
        // const pointer only so the read path can share it.
        return const_cast<Page &>(*cachedPage_);
    }
    auto it = pages_.find(page_number);
    if (it == pages_.end()) {
        // First touch of a page: warm-up cost only — a pooled trial's
        // working set re-touches the same pages, already resident.
        it = pages_.emplace(page_number, Page{}).first; // lint-ok(steady-alloc): first-touch
        allocOrder_.push_back(&it->second); // lint-ok(steady-alloc): first-touch
    }
    cachedPageNumber_ = page_number;
    cachedPage_ = &it->second;
    return it->second;
}

const MainMemory::Page *
MainMemory::findPage(Addr page_number) const
{
    if (page_number == cachedPageNumber_)
        return cachedPage_;
    auto it = pages_.find(page_number);
    if (it == pages_.end())
        return nullptr;
    cachedPageNumber_ = page_number;
    cachedPage_ = &it->second;
    return cachedPage_;
}

std::uint8_t
MainMemory::read8(Addr addr) const
{
    const Page *p = findPage(addr / kPageBytes);
    return p == nullptr ? 0 : (*p)[addr % kPageBytes];
}

void
MainMemory::write8(Addr addr, std::uint8_t value)
{
    pageFor(addr / kPageBytes)[addr % kPageBytes] = value;
}

std::uint64_t
MainMemory::read64(Addr addr) const
{
    return read(addr, 8);
}

void
MainMemory::write64(Addr addr, std::uint64_t value)
{
    write(addr, value, 8);
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    const unsigned offset = static_cast<unsigned>(addr % kPageBytes);
    if (offset + size <= kPageBytes) [[likely]] {
        // Single page lookup for the whole access.
        const Page *p = findPage(addr / kPageBytes);
        if (p == nullptr)
            return 0;
        const std::uint8_t *bytes = p->data() + offset;
        std::uint64_t value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
        return value;
    }
    // Page-straddling access: per-byte path (read8 still hits the
    // last-page cache for all bytes on each side of the boundary).
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<std::uint64_t>(read8(addr + i)) << (8 * i);
    return value;
}

void
MainMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    const unsigned offset = static_cast<unsigned>(addr % kPageBytes);
    if (offset + size <= kPageBytes) [[likely]] {
        std::uint8_t *bytes = pageFor(addr / kPageBytes).data() + offset;
        for (unsigned i = 0; i < size; ++i)
            bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

Cycle
MainMemory::accessLatency()
{
    double latency = cfg_.accessLatency;
    if (cfg_.jitterSigma > 0.0)
        latency += rng_.gaussian(0.0, cfg_.jitterSigma);
    latency = std::max(1.0, latency);
    return static_cast<Cycle>(std::llround(latency));
}

void
MainMemory::reset(const MemoryConfig &cfg)
{
    cfg_ = cfg;
    // Walk the deterministic allocation-order list, not the hash map:
    // the zeroing itself is order-insensitive, but keeping every
    // container walk deterministic is what lets lint_sim.py forbid
    // unordered iteration outright instead of judging call sites.
    for (Page *page : allocOrder_)
        page->fill(0);
    // Page pointers stay valid (no node was erased); the cache needs no
    // invalidation, but reset it anyway so reuse starts predictably.
    invalidatePageCache();
}

} // namespace unxpec
