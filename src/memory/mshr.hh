/**
 * @file
 * Miss Status Holding Registers. An MSHR entry tracks one outstanding
 * line fill: its completion cycle, whether the requester was
 * speculative, and which line the fill displaced. CleanupSpec mines
 * exactly this bookkeeping during rollback — the addresses of evicted
 * victims come from the MSHR (paper §II-B), and T3 of the timeline is
 * "request MSHR to clean inflight mis-speculated loads".
 */

#ifndef UNXPEC_MEMORY_MSHR_HH
#define UNXPEC_MEMORY_MSHR_HH

#include <cstdint>
#include <vector>

#include "sim/annotate.hh"
#include "sim/arena.hh"
#include "sim/types.hh"

namespace unxpec {

/** One outstanding miss. */
struct MshrEntry
{
    Addr lineAddr = kAddrInvalid;
    Cycle readyCycle = kCycleNever; //!< fill (and data) arrival
    UNXPEC_SPEC_STATE bool speculative = false; //!< requester uncommitted
    UNXPEC_SPEC_STATE SeqNum installer = kSeqNone; //!< first requester
    unsigned targets = 0;           //!< merged requesters
    /** Victim displaced by this fill (for CleanupSpec restoration). */
    Addr victimLine = kAddrInvalid;
    bool victimValid = false;
    bool victimDirty = false;
};

/**
 * Fixed-capacity MSHR file. Completed entries are retired lazily by
 * release(); a full file back-pressures the requester (the cache adds
 * a retry delay).
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity, Arena *arena = nullptr)
        : capacity_(capacity), entries_(ArenaAllocator<MshrEntry>(arena))
    {
        // Fixed capacity reserved up front: allocate() never regrows,
        // so a warm MSHR file performs no steady-state heap traffic.
        // lint-ok(steady-alloc): one-time construction sizing
        entries_.reserve(capacity);
    }

    /** Retire every entry whose fill has landed by `now`. */
    UNXPEC_TRANSITION("commit")
    void release(Cycle now);

    /** Find the outstanding entry for a line, or nullptr. */
    MshrEntry *find(Addr line_addr);
    const MshrEntry *find(Addr line_addr) const;

    /** Allocate a new entry; the file must not be full. */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox,CacheSquash")
    MshrEntry &allocate(Addr line_addr, Cycle ready, bool speculative,
                        SeqNum installer);

    /** Drop the entry for a line (CleanupSpec T3 inflight purge). */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    bool squash(Addr line_addr);

    /**
     * Cancel the outstanding fill for `line_addr` if (and only if) it
     * was allocated by the given speculative installer — the CacheSquash
     * cancellation path, driven by CleanupEngine::rollback at squash
     * time and by the commit path when the parked fill becomes real.
     * Unlike squash(), a committed (non-speculative) fill or a fill
     * re-requested by a different installer is left alone.
     */
    UNXPEC_TRANSITION("commit")
    UNXPEC_ROLLBACK("CacheSquash")
    bool cancel(Addr line_addr, SeqNum installer);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t inflight() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Earliest completion among outstanding entries (kCycleNever if none). */
    Cycle earliestReady() const;

    const ArenaVector<MshrEntry> &entries() const { return entries_; }

    UNXPEC_TRANSITION("reset")
    void clear() { entries_.clear(); }

  private:
    unsigned capacity_;
    /** The outstanding-miss set itself is speculative state: CacheSquash
     *  parks cancellable speculative fills here and its squash path
     *  must leave no entry behind (auditRollbackComplete). */
    UNXPEC_SPEC_STATE ArenaVector<MshrEntry> entries_;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_MSHR_HH
