/**
 * @file
 * MESI coherence for the Machine layer, in two parts:
 *
 *   namespace coh   Line-state transition helpers. Every assignment to
 *                   CacheLine::coh / CacheLine::pendingDowngrade in the
 *                   simulator lives either here or in coherence.cc —
 *                   scripts/lint_sim.py (rule `coherence-mutation`)
 *                   rejects mutations anywhere else, so the transition
 *                   table below is the whole story.
 *
 *   CoherenceEngine Snoop-based coherence across the private L1s of a
 *                   Machine's cores over one shared L2/MainMemory. The
 *                   paper's §II-B defense semantics — serving a remote
 *                   request that hits a speculatively installed line as
 *                   a *dummy miss*, and *delaying* the M/E->S downgrade
 *                   until the installing load commits — live on this
 *                   path (moved out of MemoryHierarchy::crossCoreRead,
 *                   which survives only as a compat shim).
 *
 * Determinism: the engine holds no clock and draws no randomness; every
 * transaction is applied synchronously inside the requesting core's
 * access, and the Machine steps cores in index order, so transaction
 * order is a pure function of (config, seeds, programs).
 */

#ifndef UNXPEC_MEMORY_COHERENCE_HH
#define UNXPEC_MEMORY_COHERENCE_HH

#include <vector>

#include "memory/cache_line.hh"
#include "sim/annotate.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace unxpec {

class Cache;
class MainMemory;
class MemoryHierarchy;
class Tracer;
struct MemAccessRecord;

namespace coh {

/** Clean demand fill: sole copy, not yet written. */
UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                  "Cleanup_FULL,SpecBox")
inline void
onFill(CacheLine &slot)
{
    slot.coh = CohState::Exclusive;
    slot.pendingDowngrade = false;
}

/** Victim restoration / inflight undo: the line returns with the
 *  dirtiness it left with. */
UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
inline void
onRestore(CacheLine &slot, bool dirty)
{
    slot.coh = dirty ? CohState::Modified : CohState::Exclusive;
    slot.pendingDowngrade = false;
}

/** Local write (hit or write-allocate): M, the single-writer state.
 *  Stores execute at commit in this model. */
UNXPEC_TRANSITION("commit")
inline void
onLocalWrite(CacheLine &slot)
{
    slot.coh = CohState::Modified;
}

/** A fill served by a remote core's cache: both copies become S. */
UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                  "Cleanup_FULL,SpecBox")
inline void
onSharedFill(CacheLine &slot)
{
    slot.coh = CohState::Shared;
    slot.pendingDowngrade = false;
}

/** Remote read hit on a committed copy: M/E degrade to S (a dirty M
 *  copy is considered written back to the shared level). */
UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                  "Cleanup_FULL,SpecBox")
inline void
onRemoteRead(CacheLine &slot)
{
    if (slot.coh == CohState::Modified || slot.coh == CohState::Exclusive)
        slot.coh = CohState::Shared;
}

/** Remote probe hit a *speculative* copy under a defense: record the
 *  downgrade but apply it only when the installer commits (§II-B).
 *  Only M/E have anywhere to downgrade to — an already-Shared
 *  speculative copy defers nothing. */
UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                  "Cleanup_FULL,SpecBox")
inline void
onDelayedDowngrade(CacheLine &slot)
{
    if (slot.coh == CohState::Modified || slot.coh == CohState::Exclusive)
        slot.pendingDowngrade = true;
}

/** Installing load committed: apply any downgrade the defense delayed
 *  while the line was speculative. */
UNXPEC_TRANSITION("commit")
inline void
onCommit(CacheLine &slot)
{
    if (slot.pendingDowngrade) {
        slot.coh = CohState::Shared;
        slot.pendingDowngrade = false;
    }
}

/** Undo of a squashed speculative access's remote downgrade: the owner
 *  gets its pre-snoop state back (CleanupSpec coherence rollback). */
UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
inline void
onDowngradeUndo(CacheLine &slot, CohState previous)
{
    if (slot.coh == CohState::Shared)
        slot.coh = previous;
}

} // namespace coh

/** What a cross-core read request observes (the crossCoreRead shim's
 *  result; kept at namespace scope so the engine can produce it). */
struct CrossCoreProbe
{
    bool hit = false;        //!< served from the probed core's caches
    Cycle ready = 0;         //!< when the requester gets data
    CohState observed = CohState::Invalid;
    bool dummyMiss = false;  //!< protection served a fake miss
};

/**
 * Snoop/directory engine over the private L1s of a multi-core Machine.
 * One instance per Machine; attached to every core's MemoryHierarchy,
 * which consults it on each L1 miss, clflush, shared-L2 eviction, and
 * victim restoration.
 */
class CoherenceEngine
{
  public:
    /** Outcome of snooping the other cores for a local L1 miss. */
    struct SnoopResult
    {
        /** A remote L1 supplied the data (cache-to-cache transfer). */
        bool served = false;
        /** A defense hid a remote speculative copy: the requester must
         *  observe full miss latency and install nothing. */
        bool dummyMiss = false;
        /** A remote committed M/E copy was downgraded to S. */
        bool downgraded = false;
        unsigned owner = 0;          //!< core whose copy was found
        CohState prevState = CohState::Invalid; //!< owner state pre-snoop
    };

    explicit CoherenceEngine(const SystemConfig &cfg);

    /** Register core `core_id`'s hierarchy (Machine construction).
     *  Core 0's hierarchy owns the shared L2/MainMemory. */
    void attach(unsigned core_id, MemoryHierarchy *hier);

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /**
     * Snoop every other core's L1D (and the shared L2's speculative
     * markings) for core `requester`'s L1 miss on `line` at `now`.
     * Applies the resulting transitions (downgrade, invalidation on a
     * write, delayed downgrade under a defense) and records undo
     * information into `record` when the requester is speculative.
     */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox")
    SnoopResult snoop(unsigned requester, Addr line, Cycle now, bool write,
                      bool speculative, MemAccessRecord &record);

    /**
     * Defense-aware read probe issued *by* core `requester` against the
     * rest of the machine — the real implementation behind the
     * MemoryHierarchy::crossCoreRead compat shim.
     */
    CrossCoreProbe remoteRead(unsigned requester, Addr addr, Cycle now);

    /**
     * A local write hit upgraded S -> M on core `writer`: invalidate
     * every other core's copy of the line.
     */
    UNXPEC_TRANSITION("commit")
    void invalidateRemote(unsigned writer, Addr line);

    /**
     * The shared L2 evicted `victim`: back-invalidate every L1 copy so
     * L1 (subset) L2 inclusion holds machine-wide.
     */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox")
    void backInvalidate(Addr victim);

    /**
     * Defense check for an L1-missing request that hit a *speculative*
     * line in the shared L2 (the installing core's L1 copy may already
     * be gone): under a defense the line must stay invisible, so the
     * request is served as a dummy miss and the downgrade is delayed.
     * @return true when the caller must fake a full miss (no install,
     * memory latency).
     */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox")
    bool hideSharedSpeculative(CacheLine &slot, Addr line, Cycle now);

    /**
     * Re-establish L1 (subset) L2 inclusion for a line the cleanup
     * engine just put back into an L1 (victim restoration / inflight
     * undo): if the shared L2 no longer holds it, install it there,
     * back-invalidating whatever that displaces.
     */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    void ensureInclusion(Addr line, Cycle now);

    /** clflush semantics across the machine: drop every core's copy.
     *  @return true when any dirty copy had to be written back.
     *  clflush only executes non-speculatively (tickIssue orders it). */
    UNXPEC_TRANSITION("commit")
    bool flushAll(Addr line);

    /**
     * CleanupSpec coherence rollback: a squashed speculative access had
     * snooped a remote committed M/E copy down to S — give the owner
     * its pre-snoop state back (record.snoopOwner/snoopPrevState).
     */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    void undoSnoopDowngrade(const MemAccessRecord &record);

    /**
     * Coherence invariants (sim/audit.hh): at most one M/E owner per
     * line across the private L1Ds, every valid L1 line present in the
     * shared L2 (inclusion), and commitSpeculative/rollback left no
     * stale pendingDowngrade. Throws AuditError.
     */
    void auditInvariants(Cycle now) const;

    StatGroup &stats() { return stats_; }

    /** Zero the engine's statistics (Machine::reset). */
    void resetStats() { stats_.resetAll(); }

    /** Event tracer for snoop/downgrade/dummy-miss instants. */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    /** The single shared L2 (core 0's). */
    Cache &sharedL2() const;

    SystemConfig cfg_;
    bool protections_;
    std::vector<MemoryHierarchy *> cores_;
    Tracer *tracer_ = nullptr;

    StatGroup stats_;
    Counter &snoops_;
    Counter &remoteHits_;
    Counter &downgrades_;
    Counter &delayedDowngrades_;
    Counter &dummyMisses_;
    Counter &remoteInvalidations_;
    Counter &backInvalidations_;
    Counter &downgradeUndos_;
};

/**
 * Single-hierarchy compat probe: the pre-Machine crossCoreRead
 * semantics over one MemoryHierarchy's own L1D/L2 (no engine, no
 * second core). Bit-compatible with the retired fake — the 1-core
 * golden gate and tests/coherence_test.cc pin it.
 */
CrossCoreProbe probeHierarchy(MemoryHierarchy &hier, Addr addr, Cycle now);

} // namespace unxpec

#endif // UNXPEC_MEMORY_COHERENCE_HH
