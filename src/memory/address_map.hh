/**
 * @file
 * Set-index functions. The conventional mapping uses the low line bits;
 * the CEASER-style mapping (Qureshi, MICRO'18) encrypts the line
 * address with a keyed permutation before indexing, which CleanupSpec
 * adopts on lower-level caches in lieu of restoration.
 *
 * The hot path (Cache::probe and friends) goes through SetIndexer, a
 * concrete enum-dispatched indexer that inlines the common modulo case
 * into the caller; the virtual IndexFunction hierarchy remains for the
 * cold create path and for tests that exercise the mappings directly.
 */

#ifndef UNXPEC_MEMORY_ADDRESS_MAP_HH
#define UNXPEC_MEMORY_ADDRESS_MAP_HH

#include <cstdint>
#include <memory>

#include "sim/config.hh"
#include "sim/types.hh"

namespace unxpec {

namespace detail {

/** Simple keyed mixing function for one Feistel round. */
inline std::uint32_t
feistelRound(std::uint32_t half, std::uint64_t key)
{
    std::uint64_t x = half ^ key;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x);
}

/** Expand a CEASER key into the four Feistel round keys. */
inline void
expandCeaserKeys(std::uint64_t key, std::uint64_t (&round_keys)[4])
{
    std::uint64_t k = key ? key : 0xdeadbeefcafef00dull;
    for (auto &round_key : round_keys) {
        k = k * 6364136223846793005ull + 1442695040888963407ull;
        round_key = k;
    }
}

/** 4-round Feistel permutation of a 64-bit line number. */
inline std::uint64_t
ceaserPermute(std::uint64_t line_number, const std::uint64_t (&keys)[4])
{
    auto left = static_cast<std::uint32_t>(line_number >> 32);
    auto right = static_cast<std::uint32_t>(line_number);
    for (const auto round_key : keys) {
        const std::uint32_t next = left ^ feistelRound(right, round_key);
        left = right;
        right = next;
    }
    return (static_cast<std::uint64_t>(left) << 32) | right;
}

} // namespace detail

/**
 * Devirtualized set indexer used on the cache hot path. Dispatch is a
 * predictable branch on a two-value enum instead of a virtual call, and
 * the common case (modulo indexing over a power-of-two set count) is a
 * single AND that the compiler inlines into probe()/install().
 * rekey() supports Core::reset re-deriving seed-dependent CEASER keys
 * without reallocating the owning cache.
 */
class SetIndexer
{
  public:
    SetIndexer(IndexPolicy policy, unsigned num_sets, std::uint64_t key)
        : policy_(policy), numSets_(num_sets),
          powerOfTwo_(num_sets != 0 && (num_sets & (num_sets - 1)) == 0),
          setMask_(num_sets - 1)
    {
        detail::expandCeaserKeys(key, roundKeys_);
    }

    /** Set index for a line address (offset bits already stripped). */
    unsigned
    set(Addr line_addr) const
    {
        std::uint64_t line = lineNumber(line_addr);
        if (policy_ != IndexPolicy::Modulo)
            line = detail::ceaserPermute(line, roundKeys_);
        if (powerOfTwo_)
            return static_cast<unsigned>(line & setMask_);
        return static_cast<unsigned>(line % numSets_);
    }

    /** The keyed permutation itself (exposed for tests). */
    std::uint64_t
    permute(std::uint64_t line_number) const
    {
        return detail::ceaserPermute(line_number, roundKeys_);
    }

    /** Re-derive the CEASER round keys from a new key (Core::reset). */
    void rekey(std::uint64_t key) { detail::expandCeaserKeys(key, roundKeys_); }

    IndexPolicy policy() const { return policy_; }
    unsigned numSets() const { return numSets_; }

  private:
    IndexPolicy policy_;
    unsigned numSets_;
    bool powerOfTwo_;
    std::uint64_t setMask_;
    std::uint64_t roundKeys_[4];
};

/** Maps a line address to a set index (cold/virtual interface). */
class IndexFunction
{
  public:
    explicit IndexFunction(unsigned num_sets) : numSets_(num_sets) {}
    virtual ~IndexFunction() = default;

    /** Set index for a line address (offset bits already stripped). */
    virtual unsigned set(Addr line_addr) const = 0;

    unsigned numSets() const { return numSets_; }

    /** Factory for the function named in a CacheConfig. */
    static std::unique_ptr<IndexFunction>
    create(IndexPolicy policy, unsigned num_sets, std::uint64_t key);

  protected:
    unsigned numSets_;
};

/** Conventional modulo indexing on the line number. */
class ModuloIndex : public IndexFunction
{
  public:
    explicit ModuloIndex(unsigned num_sets) : IndexFunction(num_sets) {}
    unsigned set(Addr line_addr) const override;
};

/**
 * CEASER-style keyed index: a 4-round Feistel network permutes the
 * 64-bit line number under a secret key; the permuted value is then
 * indexed modulo the set count. Bijective, so distinct lines never
 * alias more than the modulo itself introduces.
 */
class CeaserIndex : public IndexFunction
{
  public:
    CeaserIndex(unsigned num_sets, std::uint64_t key);

    unsigned set(Addr line_addr) const override;

    /** The keyed permutation itself (exposed for tests). */
    std::uint64_t permute(std::uint64_t line_number) const;

  private:
    std::uint64_t roundKeys_[4];
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_ADDRESS_MAP_HH
