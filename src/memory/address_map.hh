/**
 * @file
 * Set-index functions. The conventional mapping uses the low line bits;
 * the CEASER-style mapping (Qureshi, MICRO'18) encrypts the line
 * address with a keyed permutation before indexing, which CleanupSpec
 * adopts on lower-level caches in lieu of restoration.
 */

#ifndef UNXPEC_MEMORY_ADDRESS_MAP_HH
#define UNXPEC_MEMORY_ADDRESS_MAP_HH

#include <cstdint>
#include <memory>

#include "sim/config.hh"
#include "sim/types.hh"

namespace unxpec {

/** Maps a line address to a set index. */
class IndexFunction
{
  public:
    explicit IndexFunction(unsigned num_sets) : numSets_(num_sets) {}
    virtual ~IndexFunction() = default;

    /** Set index for a line address (offset bits already stripped). */
    virtual unsigned set(Addr line_addr) const = 0;

    unsigned numSets() const { return numSets_; }

    /** Factory for the function named in a CacheConfig. */
    static std::unique_ptr<IndexFunction>
    create(IndexPolicy policy, unsigned num_sets, std::uint64_t key);

  protected:
    unsigned numSets_;
};

/** Conventional modulo indexing on the line number. */
class ModuloIndex : public IndexFunction
{
  public:
    explicit ModuloIndex(unsigned num_sets) : IndexFunction(num_sets) {}
    unsigned set(Addr line_addr) const override;
};

/**
 * CEASER-style keyed index: a 4-round Feistel network permutes the
 * 64-bit line number under a secret key; the permuted value is then
 * indexed modulo the set count. Bijective, so distinct lines never
 * alias more than the modulo itself introduces.
 */
class CeaserIndex : public IndexFunction
{
  public:
    CeaserIndex(unsigned num_sets, std::uint64_t key);

    unsigned set(Addr line_addr) const override;

    /** The keyed permutation itself (exposed for tests). */
    std::uint64_t permute(std::uint64_t line_number) const;

  private:
    std::uint64_t roundKeys_[4];
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_ADDRESS_MAP_HH
