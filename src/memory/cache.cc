#include "memory/cache.hh"

#include <algorithm>

#include "memory/coherence.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace unxpec {

namespace {

/** Allowed-way mask for one domain; pure function of the config. */
std::uint64_t
computeAllowedMask(const CacheConfig &cfg, unsigned domain)
{
    const unsigned usable = cfg.ways - cfg.nomoReservedWays;
    const std::uint64_t all =
        cfg.ways >= 64 ? ~0ull : ((1ull << cfg.ways) - 1);
    if (cfg.nomoReservedWays == 0)
        return all;
    const std::uint64_t own =
        usable >= 64 ? ~0ull : ((1ull << usable) - 1);
    // Domain 0 owns the low ways; the SMT sibling (domain 1) owns the
    // NoMo-reserved high ways.
    return domain == 0 ? own : (all & ~own);
}

} // namespace

Cache::Cache(const CacheConfig &cfg, Rng &rng, std::uint64_t index_key,
             Arena *arena)
    : cfg_(cfg),
      numSets_(cfg.numSets()),
      tags_(static_cast<std::size_t>(cfg.numSets()) * cfg.ways,
            kAddrInvalid, ArenaAllocator<Addr>(arena)),
      lines_(static_cast<std::size_t>(cfg.numSets()) * cfg.ways,
             CacheLine{}, ArenaAllocator<CacheLine>(arena)),
      repl_(cfg.repl, cfg.numSets(), cfg.ways, rng, arena),
      index_(cfg.index, cfg.numSets(), index_key),
      mshr_(cfg.mshrs, arena),
      allowedMask_{computeAllowedMask(cfg, 0), computeAllowedMask(cfg, 1)},
      stats_(cfg.name),
      hits_(stats_.counter("hits", "demand hits")),
      misses_(stats_.counter("misses", "demand misses")),
      evictions_(stats_.counter("evictions", "valid lines displaced")),
      invalidations_(stats_.counter("invalidations",
                                    "lines invalidated (incl. cleanup)")),
      restores_(stats_.counter("restores", "victims restored by cleanup"))
{
    if (cfg.ways == 0 || cfg.ways > 64)
        fatal("cache ", cfg.name, ": ways must be in [1, 64]");
    if (cfg.nomoReservedWays >= cfg.ways)
        fatal("cache ", cfg.name, ": NoMo reservation leaves no usable way");
}

Addr &
Cache::tag(unsigned set, unsigned way)
{
    return tags_[static_cast<std::size_t>(set) * cfg_.ways + way];
}

CacheLine &
Cache::line(unsigned set, unsigned way)
{
    return lines_[static_cast<std::size_t>(set) * cfg_.ways + way];
}

const CacheLine &
Cache::line(unsigned set, unsigned way) const
{
    return lines_[static_cast<std::size_t>(set) * cfg_.ways + way];
}

FillResult
Cache::install(Addr line_addr, Cycle fill_cycle, bool speculative,
               SeqNum installer, unsigned domain)
{
    const unsigned set = index_.set(line_addr);
    const std::uint64_t mask = allowedMask_[domain == 0 ? 0 : 1];

    FillResult result;
    result.set = set;

    // Prefer an invalid allowed way.
    const Addr *tags = tags_.data() + static_cast<std::size_t>(set) * cfg_.ways;
    unsigned chosen = cfg_.ways;
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        if ((mask & (1ull << way)) && tags[way] == kAddrInvalid) {
            chosen = way;
            break;
        }
    }
    if (chosen == cfg_.ways) {
        chosen = repl_.victim(set, mask);
        CacheLine &victim = line(set, chosen);
        result.victimLine = victim.lineAddr;
        result.victimValid = true;
        result.victimDirty = victim.dirty;
        result.victimSpeculative = victim.speculative;
        ++evictions_;
        if (kTraceEnabled && tracer_ != nullptr &&
            tracer_->enabled(kTraceCatCache)) {
            tracer_->instant(
                TraceKind::CacheEvict, installer, result.victimLine, 0,
                traceLevel_,
                static_cast<std::uint16_t>(
                    (result.victimDirty ? kTraceFlagDirty : 0) |
                    (result.victimSpeculative ? kTraceFlagSpeculative
                                              : 0)));
        }
    }

    CacheLine &slot = line(set, chosen);
    slot.lineAddr = line_addr;
    slot.valid = true;
    slot.dirty = false;
    slot.speculative = speculative;
    slot.installer = speculative ? installer : kSeqNone;
    slot.fillCycle = fill_cycle;
    coh::onFill(slot);
    tag(set, chosen) = line_addr;
    repl_.fill(set, chosen);

    if (kTraceEnabled && tracer_ != nullptr &&
        tracer_->enabled(kTraceCatCache)) {
        // Span from the request (the tracer's current cycle) to the
        // fill's landing; a backdated fill renders as an instant.
        const Cycle start = std::min(tracer_->now(), fill_cycle);
        tracer_->span(
            TraceKind::CacheFill, start, fill_cycle - start, installer,
            line_addr, 0, traceLevel_,
            speculative
                ? static_cast<std::uint16_t>(kTraceFlagSpeculative)
                : std::uint16_t{0});
    }

    result.way = chosen;
    return result;
}

void
Cache::installAt(unsigned set, unsigned way, Addr line_addr, bool dirty,
                 Cycle fill_cycle)
{
    if (set >= numSets_ || way >= cfg_.ways)
        panic("Cache::installAt out of range");
    CacheLine &slot = line(set, way);
    slot.lineAddr = line_addr;
    slot.valid = true;
    slot.dirty = dirty;
    slot.speculative = false;
    slot.installer = kSeqNone;
    slot.fillCycle = fill_cycle;
    coh::onRestore(slot, dirty);
    tag(set, way) = line_addr;
    repl_.fill(set, way);
    if (kTraceEnabled && tracer_ != nullptr &&
        tracer_->enabled(kTraceCatCache)) {
        tracer_->instantAt(fill_cycle, TraceKind::CacheRestore, kSeqNone,
                           line_addr, 0, traceLevel_,
                           dirty
                               ? static_cast<std::uint16_t>(kTraceFlagDirty)
                               : std::uint16_t{0});
    }
}

bool
Cache::invalidate(Addr line_addr)
{
    const int way = findWay(line_addr);
    if (way < 0)
        return false;
    const unsigned set = index_.set(line_addr);
    line(set, static_cast<unsigned>(way)).reset();
    tag(set, static_cast<unsigned>(way)) = kAddrInvalid;
    ++invalidations_;
    if (kTraceEnabled && tracer_ != nullptr &&
        tracer_->enabled(kTraceCatCache)) {
        tracer_->instant(TraceKind::CacheInvalidate, kSeqNone, line_addr,
                         0, traceLevel_);
    }
    return true;
}

bool
Cache::invalidateAt(unsigned set, unsigned way, Addr line_addr)
{
    if (set >= numSets_ || way >= cfg_.ways)
        panic("Cache::invalidateAt out of range");
    CacheLine &candidate = line(set, way);
    if (candidate.valid && candidate.lineAddr == line_addr) {
        candidate.reset();
        tag(set, way) = kAddrInvalid;
        ++invalidations_;
        if (kTraceEnabled && tracer_ != nullptr &&
            tracer_->enabled(kTraceCatCache)) {
            tracer_->instant(TraceKind::CacheInvalidate, kSeqNone,
                             line_addr, 0, traceLevel_);
        }
        return true;
    }
    return false;
}

void
Cache::markDirty(Addr line_addr)
{
    if (CacheLine *hit = probeMutable(line_addr)) {
        hit->dirty = true;
        coh::onLocalWrite(*hit);
    }
}

void
Cache::commitSpeculative(Addr line_addr, SeqNum installer)
{
    CacheLine *hit = probeMutable(line_addr);
    if (hit != nullptr && hit->speculative && hit->installer == installer) {
        hit->speculative = false;
        hit->installer = kSeqNone;
        // Apply the coherence downgrade CleanupSpec delayed while the
        // installer was speculative.
        coh::onCommit(*hit);
    }
}

unsigned
Cache::setOccupancy(unsigned set) const
{
    const Addr *tags = tags_.data() + static_cast<std::size_t>(set) * cfg_.ways;
    unsigned occupancy = 0;
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        if (tags[way] != kAddrInvalid)
            ++occupancy;
    }
    return occupancy;
}

std::vector<Addr>
Cache::residentLines() const
{
    std::vector<Addr> resident;
    // lint-ok(steady-alloc): audit/debug helper, not a tick path
    resident.reserve(tags_.size());
    for (const Addr tag_addr : tags_) {
        if (tag_addr != kAddrInvalid)
            resident.push_back(tag_addr); // lint-ok(steady-alloc): audit
    }
    std::sort(resident.begin(), resident.end());
    return resident;
}

void
Cache::reset()
{
    for (auto &slot : lines_)
        slot.reset();
    std::fill(tags_.begin(), tags_.end(), kAddrInvalid);
    mshr_.clear();
}

void
Cache::reseed(std::uint64_t index_key)
{
    reset();
    repl_.reset();
    index_.rekey(index_key);
    stats_.resetAll();
}

} // namespace unxpec
