#include "memory/cache.hh"

#include <algorithm>

#include "sim/log.hh"

namespace unxpec {

Cache::Cache(const CacheConfig &cfg, Rng &rng, std::uint64_t index_key)
    : cfg_(cfg),
      numSets_(cfg.numSets()),
      lines_(static_cast<std::size_t>(cfg.numSets()) * cfg.ways),
      repl_(ReplacementPolicy::create(cfg.repl, cfg.numSets(), cfg.ways,
                                      rng)),
      index_(IndexFunction::create(cfg.index, cfg.numSets(), index_key)),
      mshr_(cfg.mshrs),
      stats_(cfg.name),
      hits_(stats_.counter("hits", "demand hits")),
      misses_(stats_.counter("misses", "demand misses")),
      evictions_(stats_.counter("evictions", "valid lines displaced")),
      invalidations_(stats_.counter("invalidations",
                                    "lines invalidated (incl. cleanup)")),
      restores_(stats_.counter("restores", "victims restored by cleanup"))
{
    if (cfg.ways == 0 || cfg.ways > 64)
        fatal("cache ", cfg.name, ": ways must be in [1, 64]");
    if (cfg.nomoReservedWays >= cfg.ways)
        fatal("cache ", cfg.name, ": NoMo reservation leaves no usable way");
}

std::uint64_t
Cache::allowedMask(unsigned domain) const
{
    const unsigned usable = cfg_.ways - cfg_.nomoReservedWays;
    const std::uint64_t all =
        cfg_.ways >= 64 ? ~0ull : ((1ull << cfg_.ways) - 1);
    if (cfg_.nomoReservedWays == 0)
        return all;
    const std::uint64_t own =
        usable >= 64 ? ~0ull : ((1ull << usable) - 1);
    // Domain 0 owns the low ways; the SMT sibling (domain 1) owns the
    // NoMo-reserved high ways.
    return domain == 0 ? own : (all & ~own);
}

CacheLine &
Cache::line(unsigned set, unsigned way)
{
    return lines_[static_cast<std::size_t>(set) * cfg_.ways + way];
}

const CacheLine &
Cache::line(unsigned set, unsigned way) const
{
    return lines_[static_cast<std::size_t>(set) * cfg_.ways + way];
}

const CacheLine *
Cache::probe(Addr line_addr) const
{
    const unsigned set = index_->set(line_addr);
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        const CacheLine &candidate = line(set, way);
        if (candidate.valid && candidate.lineAddr == line_addr)
            return &candidate;
    }
    return nullptr;
}

CacheLine *
Cache::probeMutable(Addr line_addr)
{
    return const_cast<CacheLine *>(probe(line_addr));
}

bool
Cache::present(Addr line_addr, Cycle now) const
{
    const CacheLine *hit = probe(line_addr);
    return hit != nullptr && hit->fillCycle <= now;
}

void
Cache::touch(Addr line_addr)
{
    const unsigned set = index_->set(line_addr);
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        if (line(set, way).valid && line(set, way).lineAddr == line_addr) {
            repl_->touch(set, way);
            return;
        }
    }
}

FillResult
Cache::install(Addr line_addr, Cycle fill_cycle, bool speculative,
               SeqNum installer, unsigned domain)
{
    const unsigned set = index_->set(line_addr);
    const std::uint64_t mask = allowedMask(domain);

    FillResult result;
    result.set = set;

    // Prefer an invalid allowed way.
    unsigned chosen = cfg_.ways;
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        if ((mask & (1ull << way)) && !line(set, way).valid) {
            chosen = way;
            break;
        }
    }
    if (chosen == cfg_.ways) {
        chosen = repl_->victim(set, mask);
        CacheLine &victim = line(set, chosen);
        result.victimLine = victim.lineAddr;
        result.victimValid = true;
        result.victimDirty = victim.dirty;
        result.victimSpeculative = victim.speculative;
        ++evictions_;
    }

    CacheLine &slot = line(set, chosen);
    slot.lineAddr = line_addr;
    slot.valid = true;
    slot.dirty = false;
    slot.speculative = speculative;
    slot.installer = speculative ? installer : kSeqNone;
    slot.fillCycle = fill_cycle;
    slot.coh = CohState::Exclusive;
    slot.pendingDowngrade = false;
    repl_->fill(set, chosen);

    result.way = chosen;
    return result;
}

void
Cache::installAt(unsigned set, unsigned way, Addr line_addr, bool dirty,
                 Cycle fill_cycle)
{
    if (set >= numSets_ || way >= cfg_.ways)
        panic("Cache::installAt out of range");
    CacheLine &slot = line(set, way);
    slot.lineAddr = line_addr;
    slot.valid = true;
    slot.dirty = dirty;
    slot.speculative = false;
    slot.installer = kSeqNone;
    slot.fillCycle = fill_cycle;
    slot.coh = dirty ? CohState::Modified : CohState::Exclusive;
    slot.pendingDowngrade = false;
    repl_->fill(set, way);
}

bool
Cache::invalidate(Addr line_addr)
{
    const unsigned set = index_->set(line_addr);
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        CacheLine &candidate = line(set, way);
        if (candidate.valid && candidate.lineAddr == line_addr) {
            candidate.reset();
            ++invalidations_;
            return true;
        }
    }
    return false;
}

bool
Cache::invalidateAt(unsigned set, unsigned way, Addr line_addr)
{
    if (set >= numSets_ || way >= cfg_.ways)
        panic("Cache::invalidateAt out of range");
    CacheLine &candidate = line(set, way);
    if (candidate.valid && candidate.lineAddr == line_addr) {
        candidate.reset();
        ++invalidations_;
        return true;
    }
    return false;
}

void
Cache::markDirty(Addr line_addr)
{
    if (CacheLine *hit = probeMutable(line_addr)) {
        hit->dirty = true;
        hit->coh = CohState::Modified;
    }
}

void
Cache::commitSpeculative(Addr line_addr, SeqNum installer)
{
    CacheLine *hit = probeMutable(line_addr);
    if (hit != nullptr && hit->speculative && hit->installer == installer) {
        hit->speculative = false;
        hit->installer = kSeqNone;
        // Apply the coherence downgrade CleanupSpec delayed while the
        // installer was speculative.
        if (hit->pendingDowngrade) {
            hit->coh = CohState::Shared;
            hit->pendingDowngrade = false;
        }
    }
}

unsigned
Cache::setOf(Addr line_addr) const
{
    return index_->set(line_addr);
}

unsigned
Cache::setOccupancy(unsigned set) const
{
    unsigned occupancy = 0;
    for (unsigned way = 0; way < cfg_.ways; ++way) {
        if (line(set, way).valid)
            ++occupancy;
    }
    return occupancy;
}

std::vector<Addr>
Cache::residentLines() const
{
    std::vector<Addr> resident;
    for (const auto &candidate : lines_) {
        if (candidate.valid)
            resident.push_back(candidate.lineAddr);
    }
    std::sort(resident.begin(), resident.end());
    return resident;
}

void
Cache::reset()
{
    for (auto &slot : lines_)
        slot.reset();
    mshr_.clear();
}

} // namespace unxpec
