/**
 * @file
 * The full memory hierarchy of Table I: private L1I, private L1D,
 * shared L2, DRAM. Produces, for every data access, a MemAccessRecord
 * describing exactly which levels hit, what was installed where, and
 * which victims were displaced — the raw material CleanupSpec's
 * rollback engine (and thus the unXpec timing channel) operates on.
 */

#ifndef UNXPEC_MEMORY_HIERARCHY_HH
#define UNXPEC_MEMORY_HIERARCHY_HH

#include <cstdint>

#include "cleanup/safespec.hh"
#include "memory/cache.hh"
#include "memory/coherence.hh"
#include "memory/main_memory.hh"
#include "sim/annotate.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace unxpec {

class Tracer;

/** Full account of one data-side access through the hierarchy. */
struct MemAccessRecord
{
    Addr lineAddr = kAddrInvalid;
    bool write = false;
    bool speculative = false;
    SeqNum seq = kSeqNone;

    bool l1Hit = false;
    bool l2Hit = false;
    bool merged = false;        //!< satisfied by an outstanding MSHR fill
    /** Served invisibly (InvisiSpec): nothing was installed; the data
     *  went to the shadow buffer and must be exposed at commit. */
    bool invisible = false;
    /** Served via the SafeSpec shadow L1: nothing in the caches yet.
     *  Commit promotes the line (commitShadow, free — the data is
     *  already on chip); squash has the rollback engine discard it. */
    bool shadow = false;
    /** CacheSquash: the fill is parked in a cancellable MSHR entry and
     *  installs no tags. Commit installs it (commitPendingFill);
     *  squash has the rollback engine cancel it in the MSHR. */
    bool mshrOnly = false;

    Cycle issued = 0;
    Cycle ready = 0;            //!< data available to the requester

    bool l1Installed = false;
    unsigned l1Set = 0;
    unsigned l1Way = 0;
    Addr l1Victim = kAddrInvalid;
    bool l1VictimValid = false;
    bool l1VictimDirty = false;

    bool l2Installed = false;
    unsigned l2Set = 0;
    unsigned l2Way = 0;
    Addr l2Victim = kAddrInvalid;
    bool l2VictimValid = false;

    // --- coherence outcome (multi-core Machine configs only) ---------
    /** Served by a cache-to-cache transfer from a remote core's L1. */
    bool servedBySnoop = false;
    /** A defense hid a remote speculative copy: this access saw full
     *  miss latency and installed nothing (§II-B dummy miss). */
    bool dummyMiss = false;
    /** This access downgraded a remote committed M/E copy to S; the
     *  rollback engine undoes it if the access squashes. */
    bool snoopDowngrade = false;
    /** Core whose copy was downgraded. uint8_t, not unsigned: this
     *  record rides in every RobEntry, and a byte here packs into the
     *  struct's tail padding instead of growing it (--cores caps at
     *  16 anyway). */
    std::uint8_t snoopOwner = 0;
    CohState snoopPrevState = CohState::Invalid; //!< pre-snoop state

    /** Latency seen by the requesting instruction. */
    Cycle latency() const { return ready - issued; }
};

/**
 * Composed cache hierarchy with a single requester (the paper's model:
 * sender and receiver share one thread on one core).
 */
class MemoryHierarchy
{
  public:
    /**
     * `arena` (optional) backs the per-trial cache state (tags, line
     * metadata, replacement stamps, MSHR files) of all three levels;
     * null falls back to the heap.
     */
    MemoryHierarchy(const SystemConfig &cfg, Rng &rng,
                    Arena *arena = nullptr);

    /**
     * Timing + state access for a data load or store at cycle `now`.
     * Write allocates like a read and dirties the L1 line; functional
     * data movement is the caller's job (via mem()).
     * Speculative-state scope: InvisiSpec/SafeSpec/CacheSquash route
     * speculative loads through their own paths below, and DelayOnMiss
     * speculative accesses are hit-only (misses wait), so only the
     * listed modes can reach an install speculatively through here.
     */
    UNXPEC_TRANSITION("spec@UnsafeBaseline,Cleanup_FOR_L1,Cleanup_FOR_L1L2,"
                      "Cleanup_FULL,SpecBox")
    MemAccessRecord access(Addr addr, Cycle now, bool write,
                           bool speculative, SeqNum seq);

    /**
     * InvisiSpec load path: compute the data latency without touching
     * any cache state — no install, no replacement update, no MSHR.
     * The fill goes to the core's shadow buffer; the caches only learn
     * about the line if the load commits (exposure via access()).
     */
    UNXPEC_TRANSITION("spec@InvisiSpec")
    MemAccessRecord accessInvisible(Addr addr, Cycle now, SeqNum seq);

    /**
     * SafeSpec load path: a committed L1 hit is served in place;
     * anything else fills (or merges with) the shadow L1 instead of
     * the caches. No cache tags, replacement state, or MSHR entries
     * change — the speculative footprint lives entirely in shadow_.
     */
    UNXPEC_TRANSITION("spec@SafeSpec")
    MemAccessRecord accessSafeSpec(Addr addr, Cycle now, SeqNum seq);

    /**
     * CacheSquash load path: a committed L1 hit is served in place; a
     * miss computes its fill latency and parks the fill in a
     * *cancellable* speculative L1-MSHR entry without installing any
     * tags. Later speculative loads to the same line merge with the
     * parked fill exactly like a normal MSHR merge.
     */
    UNXPEC_TRANSITION("spec@CacheSquash")
    MemAccessRecord accessCacheSquash(Addr addr, Cycle now, SeqNum seq);

    /**
     * SafeSpec commit: drop the shadow entry and install the line into
     * L2+L1 as a committed fill available immediately — the data is
     * already on chip, so unlike InvisiSpec's expose-and-validate this
     * costs the commit stage nothing.
     */
    UNXPEC_TRANSITION("commit")
    void commitShadow(const MemAccessRecord &record, Cycle now);

    /** SafeSpec squash: discard the squashed load's shadow entry.
     *  @return true when an entry was dropped. */
    UNXPEC_ROLLBACK("SafeSpec")
    bool discardShadow(const MemAccessRecord &record);

    /**
     * CacheSquash commit: retire the parked MSHR entry and install the
     * line into L2+L1 as a committed fill (free, same reasoning as
     * commitShadow — commit happens at or after the fill's arrival).
     */
    UNXPEC_TRANSITION("commit")
    void commitPendingFill(const MemAccessRecord &record, Cycle now);

    /**
     * CacheSquash squash: cancel the squashed installer's parked fill
     * in the L1 MSHR (MshrFile::cancel). @return true when an entry
     * was cancelled.
     */
    UNXPEC_ROLLBACK("CacheSquash")
    bool cancelPendingFill(const MemAccessRecord &record);

    /** The SafeSpec shadow L1 (tests and stats). */
    const ShadowL1 &shadow() const { return shadow_; }

    /** Instruction-fetch path through the L1I (never speculativly tracked). */
    Cycle fetchReady(Addr addr, Cycle now);

    /**
     * clflush semantics: evict the line from every level. @return true
     * when a dirty copy had to be written back.
     */
    UNXPEC_TRANSITION("commit")
    bool flushLine(Addr addr);

    /** Clear the speculative marking once the installing load commits. */
    UNXPEC_TRANSITION("commit")
    void commitInstall(const MemAccessRecord &record);

    /**
     * Undo an install whose fill had not landed by squash time: the
     * line silently never arrives and its victim never left (models
     * CleanupSpec's T3 MSHR purge of inflight transient loads).
     */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    void undoInflight(const MemAccessRecord &record);

    /** CleanupSpec T5a: invalidate a transiently installed line. */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    bool cleanupInvalidateL1(const MemAccessRecord &record);
    UNXPEC_ROLLBACK("Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    bool cleanupInvalidateL2(const MemAccessRecord &record);

    /** CleanupSpec T5b: restore the L1 victim a transient fill evicted. */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    void cleanupRestoreL1(const MemAccessRecord &record, Cycle now);

    /** Cleanup_FULL only: restore the L2 victim as well (CleanupSpec
     *  itself never does this — too costly; see CleanupMode). */
    UNXPEC_ROLLBACK("Cleanup_FULL")
    void cleanupRestoreL2(const MemAccessRecord &record, Cycle now);

    /**
     * Drop a squashed installer's speculative marking without touching
     * the line itself: the UnsafeBaseline "rollback" (the transient
     * install persists — the vulnerability) and Cleanup_FOR_L1's
     * treatment of L2 installs (the L2 residue stays resident, paper
     * §VI-B). Confining these mutations to one annotated helper keeps
     * CleanupEngine::rollback free of direct speculative-state writes.
     */
    UNXPEC_ROLLBACK("UnsafeBaseline,Cleanup_FOR_L1")
    void dropSpeculativeMark(const MemAccessRecord &record, bool l1,
                             bool l2);

    /** What a cross-core (or SMT sibling) read request observes.
     *  The struct itself lives in memory/coherence.hh now; this alias
     *  keeps the historical `MemoryHierarchy::CrossCoreProbe` name. */
    using CrossCoreProbe = unxpec::CrossCoreProbe;

    /**
     * Compat shim over the coherence path for a read request from
     * another core (paper §II-B): with protections on, a hit on a
     * speculatively installed line is served as a *dummy miss* and the
     * M/E->S downgrade is *delayed* until the installer commits; on
     * the unsafe baseline the hit (and the downgrade) happen
     * immediately. When this hierarchy belongs to a multi-core Machine
     * the probe is issued through the CoherenceEngine as a real
     * receiver-core request; standalone hierarchies keep the original
     * single-hierarchy semantics (probeHierarchy in coherence.cc).
     */
    CrossCoreProbe crossCoreRead(Addr addr, Cycle now);

    /** Cold-start every cache (backing store is preserved). */
    UNXPEC_TRANSITION("reset")
    void resetCaches();

    /**
     * Restore freshly-constructed state for a new seed without
     * reallocating: cold caches with re-derived index keys, zeroed
     * cache statistics, and a zeroed backing store with the original
     * MemoryConfig reinstated (Core::reset).
     */
    UNXPEC_TRANSITION("reset")
    void reseed(std::uint64_t seed);

    /**
     * Event tracer for per-access hit/miss/merge events (nullptr =
     * off); propagated to the three caches for their fill/evict/
     * invalidate/restore events.
     */
    void setTracer(Tracer *tracer);

    /**
     * Rebind this hierarchy's L2 and MainMemory to another hierarchy's
     * (the Machine layer: cores 1..N-1 share core 0's L2/memory). The
     * owned members stay allocated but unused; reseed() and
     * resetCaches() skip shared levels this hierarchy does not own.
     */
    void bindShared(Cache *l2, MainMemory *mem);

    /**
     * Attach the Machine's coherence engine. Once attached, L1 misses
     * snoop the other cores, clflush flushes machine-wide, shared-L2
     * evictions back-invalidate L1 copies (inclusion), and victim
     * restorations re-establish inclusion. Single-core configurations
     * never attach an engine and are bit-identical to the pre-Machine
     * simulator.
     */
    void setCoherence(CoherenceEngine *engine, unsigned core_id);

    CoherenceEngine *coherence() { return coh_; }
    unsigned coreId() const { return coreId_; }
    /** True when this hierarchy's own L2/memory are in use. */
    bool ownsShared() const { return l2p_ == &l2_; }

    /**
     * CleanupSpec coherence rollback: undo the remote M/E->S downgrade
     * a squashed speculative access performed (no-op without an
     * engine or when the record carries no downgrade).
     */
    UNXPEC_ROLLBACK("Cleanup_FOR_L1,Cleanup_FOR_L1L2,Cleanup_FULL,SpecBox")
    void undoSnoopDowngrade(const MemAccessRecord &record);

    /** Audit all three caches (sim/audit.hh). Throws AuditError. */
    void auditInvariants(Cycle now) const;

    /**
     * Rollback-completeness audit, run immediately after a squash of
     * everything younger than `branch_seq` (sim/audit.hh): no cache
     * line or MSHR entry may still carry a speculative marking from a
     * squashed installer. Throws AuditError.
     */
    void auditRollbackComplete(SeqNum branch_seq, Cycle now) const;

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return *l2p_; }
    MainMemory &mem() { return *memp_; }
    const SystemConfig &config() const { return cfg_; }

  private:
    /** Write-hit bookkeeping: dirty bit + S->M upgrade, invalidating
     *  remote copies through the engine in Machine configs. */
    UNXPEC_TRANSITION("commit")
    void writeHit(CacheLine &hit);

    /** Install `line` as a committed fill available at `now` into L2
     *  and L1 (skipping levels that already hold it) — the shared tail
     *  of commitShadow and commitPendingFill. */
    UNXPEC_TRANSITION("commit")
    void promoteCommitted(Addr line, Cycle now);

    SystemConfig cfg_;
    Rng &rng_;
    MainMemory mem_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    /** Active L2/memory: own members, or a shared level (bindShared). */
    Cache *l2p_ = &l2_;
    MainMemory *memp_ = &mem_;
    CoherenceEngine *coh_ = nullptr;
    unsigned coreId_ = 0;
    Tracer *tracer_ = nullptr;
    /** SafeSpec shadow L1; idle (empty) in every other mode. */
    ShadowL1 shadow_;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_HIERARCHY_HH
