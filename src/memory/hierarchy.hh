/**
 * @file
 * The full memory hierarchy of Table I: private L1I, private L1D,
 * shared L2, DRAM. Produces, for every data access, a MemAccessRecord
 * describing exactly which levels hit, what was installed where, and
 * which victims were displaced — the raw material CleanupSpec's
 * rollback engine (and thus the unXpec timing channel) operates on.
 */

#ifndef UNXPEC_MEMORY_HIERARCHY_HH
#define UNXPEC_MEMORY_HIERARCHY_HH

#include <cstdint>

#include "memory/cache.hh"
#include "memory/main_memory.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace unxpec {

class Tracer;

/** Full account of one data-side access through the hierarchy. */
struct MemAccessRecord
{
    Addr lineAddr = kAddrInvalid;
    bool write = false;
    bool speculative = false;
    SeqNum seq = kSeqNone;

    bool l1Hit = false;
    bool l2Hit = false;
    bool merged = false;        //!< satisfied by an outstanding MSHR fill
    /** Served invisibly (InvisiSpec): nothing was installed; the data
     *  went to the shadow buffer and must be exposed at commit. */
    bool invisible = false;

    Cycle issued = 0;
    Cycle ready = 0;            //!< data available to the requester

    bool l1Installed = false;
    unsigned l1Set = 0;
    unsigned l1Way = 0;
    Addr l1Victim = kAddrInvalid;
    bool l1VictimValid = false;
    bool l1VictimDirty = false;

    bool l2Installed = false;
    unsigned l2Set = 0;
    unsigned l2Way = 0;
    Addr l2Victim = kAddrInvalid;
    bool l2VictimValid = false;

    /** Latency seen by the requesting instruction. */
    Cycle latency() const { return ready - issued; }
};

/**
 * Composed cache hierarchy with a single requester (the paper's model:
 * sender and receiver share one thread on one core).
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const SystemConfig &cfg, Rng &rng);

    /**
     * Timing + state access for a data load or store at cycle `now`.
     * Write allocates like a read and dirties the L1 line; functional
     * data movement is the caller's job (via mem()).
     */
    MemAccessRecord access(Addr addr, Cycle now, bool write,
                           bool speculative, SeqNum seq);

    /**
     * InvisiSpec load path: compute the data latency without touching
     * any cache state — no install, no replacement update, no MSHR.
     * The fill goes to the core's shadow buffer; the caches only learn
     * about the line if the load commits (exposure via access()).
     */
    MemAccessRecord accessInvisible(Addr addr, Cycle now, SeqNum seq);

    /** Instruction-fetch path through the L1I (never speculativly tracked). */
    Cycle fetchReady(Addr addr, Cycle now);

    /**
     * clflush semantics: evict the line from every level. @return true
     * when a dirty copy had to be written back.
     */
    bool flushLine(Addr addr);

    /** Clear the speculative marking once the installing load commits. */
    void commitInstall(const MemAccessRecord &record);

    /**
     * Undo an install whose fill had not landed by squash time: the
     * line silently never arrives and its victim never left (models
     * CleanupSpec's T3 MSHR purge of inflight transient loads).
     */
    void undoInflight(const MemAccessRecord &record);

    /** CleanupSpec T5a: invalidate a transiently installed line. */
    bool cleanupInvalidateL1(const MemAccessRecord &record);
    bool cleanupInvalidateL2(const MemAccessRecord &record);

    /** CleanupSpec T5b: restore the L1 victim a transient fill evicted. */
    void cleanupRestoreL1(const MemAccessRecord &record, Cycle now);

    /** Cleanup_FULL only: restore the L2 victim as well (CleanupSpec
     *  itself never does this — too costly; see CleanupMode). */
    void cleanupRestoreL2(const MemAccessRecord &record, Cycle now);

    /** What a cross-core (or SMT sibling) read request observes. */
    struct CrossCoreProbe
    {
        bool hit = false;        //!< served from this core's caches
        Cycle ready = 0;         //!< when the requester gets data
        CohState observed = CohState::Invalid;
        bool dummyMiss = false;  //!< protection served a fake miss
    };

    /**
     * A read request from another core/thread for `addr` (paper
     * §II-B): with protections on, a hit on a speculatively installed
     * line is served as a *dummy miss* and the M/E->S downgrade is
     * *delayed* until the installer commits; on the unsafe baseline
     * the hit (and the downgrade) happen immediately — the leak the
     * strategies exist to close.
     */
    CrossCoreProbe crossCoreRead(Addr addr, Cycle now);

    /** Cold-start every cache (backing store is preserved). */
    void resetCaches();

    /**
     * Restore freshly-constructed state for a new seed without
     * reallocating: cold caches with re-derived index keys, zeroed
     * cache statistics, and a zeroed backing store with the original
     * MemoryConfig reinstated (Core::reset).
     */
    void reseed(std::uint64_t seed);

    /**
     * Event tracer for per-access hit/miss/merge events (nullptr =
     * off); propagated to the three caches for their fill/evict/
     * invalidate/restore events.
     */
    void setTracer(Tracer *tracer);

    /** Audit all three caches (sim/audit.hh). Throws AuditError. */
    void auditInvariants(Cycle now) const;

    /**
     * Rollback-completeness audit, run immediately after a squash of
     * everything younger than `branch_seq` (sim/audit.hh): no cache
     * line or MSHR entry may still carry a speculative marking from a
     * squashed installer. Throws AuditError.
     */
    void auditRollbackComplete(SeqNum branch_seq, Cycle now) const;

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    MainMemory &mem() { return mem_; }
    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
    Rng &rng_;
    MainMemory mem_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tracer *tracer_ = nullptr;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_HIERARCHY_HH
