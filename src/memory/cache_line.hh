/**
 * @file
 * Cache line metadata. The simulator splits function from timing: data
 * always lives in the functional backing store (MainMemory), so cache
 * arrays only track tags and state bits. That makes CleanupSpec's
 * invalidate/restore rollback a pure tag-state operation, exactly the
 * part whose *timing* the unXpec attack exploits.
 */

#ifndef UNXPEC_MEMORY_CACHE_LINE_HH
#define UNXPEC_MEMORY_CACHE_LINE_HH

#include "sim/annotate.hh"
#include "sim/types.hh"

namespace unxpec {

/**
 * Coherence state of a line (MESI-style, single-writer). CleanupSpec
 * delays "unsafe" downgrades (M/E to S) requested while the owning
 * load is still speculative, so coherence-state probes (Yao et al.,
 * HPCA'18) cannot observe speculative activity.
 */
enum class CohState : std::uint8_t
{
    Modified,
    Exclusive,
    Shared,
    Invalid,
};

/** State of one cache way. */
struct CacheLine
{
    /** Line address (byte address with offset bits cleared). */
    Addr lineAddr = kAddrInvalid;
    bool valid = false;
    bool dirty = false;
    /**
     * Installed by a speculative (not yet committed) load. CleanupSpec
     * must invalidate such lines when the installer is squashed; the
     * bit is cleared when the installer commits.
     */
    UNXPEC_SPEC_STATE bool speculative = false;
    /** Sequence number of the installing load while speculative. */
    UNXPEC_SPEC_STATE SeqNum installer = kSeqNone;
    /** Cycle at which the fill actually lands in the array. */
    Cycle fillCycle = 0;
    /** Coherence state (Exclusive on a clean fill, Modified on write). */
    UNXPEC_SPEC_STATE CohState coh = CohState::Invalid;
    /** A cross-core sharer asked for this line while it was
     *  speculative; the M/E->S downgrade is applied at commit. */
    UNXPEC_SPEC_STATE bool pendingDowngrade = false;

    UNXPEC_TRANSITION("reset")
    void
    reset()
    {
        lineAddr = kAddrInvalid;
        valid = dirty = speculative = false;
        installer = kSeqNone;
        fillCycle = 0;
        coh = CohState::Invalid;
        pendingDowngrade = false;
    }
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_CACHE_LINE_HH
