/**
 * @file
 * Functional backing store plus DRAM timing. Function and timing are
 * split: every load reads its value from here regardless of cache
 * state, so caches stay tag-only and rollback can never corrupt data.
 * The timing side models a fixed access latency (Table I: 50 ns after
 * L2) with optional gaussian jitter for noisy-host experiments.
 */

#ifndef UNXPEC_MEMORY_MAIN_MEMORY_HH
#define UNXPEC_MEMORY_MAIN_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace unxpec {

/** Flat byte-addressable memory with sparse page allocation. */
class MainMemory
{
  public:
    MainMemory(const MemoryConfig &cfg, Rng &rng) : cfg_(cfg), rng_(rng) {}

    std::uint8_t read8(Addr addr) const;
    void write8(Addr addr, std::uint8_t value);

    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t value);

    /** Read `size` bytes little-endian (size in {1, 2, 4, 8}). */
    std::uint64_t read(Addr addr, unsigned size) const;
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** One DRAM access latency in cycles (jitter applied if enabled). */
    Cycle accessLatency();

    /** Adjust the base latency at run time (models DVFS/thermal drift
     *  shifting the cycles-per-DRAM-access ratio between rounds). */
    void setAccessLatency(unsigned cycles) { cfg_.accessLatency = cycles; }

    const MemoryConfig &config() const { return cfg_; }

    /** Drop all contents (fresh address space). */
    void clear() { pages_.clear(); }

  private:
    static constexpr unsigned kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    Page &page(Addr addr);
    const Page *findPage(Addr addr) const;

    MemoryConfig cfg_;
    Rng &rng_;
    std::unordered_map<Addr, Page> pages_;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_MAIN_MEMORY_HH
