/**
 * @file
 * Functional backing store plus DRAM timing. Function and timing are
 * split: every load reads its value from here regardless of cache
 * state, so caches stay tag-only and rollback can never corrupt data.
 * The timing side models a fixed access latency (Table I: 50 ns after
 * L2) with optional gaussian jitter for noisy-host experiments.
 *
 * Hot path: read()/write() resolve their page with a single hash
 * lookup (not one per byte) behind a last-page cache, so the common
 * case — repeated access within one 4 KB page — touches the hash map
 * not at all. Accesses that straddle a page boundary fall back to the
 * per-byte path. Page pointers are stable (std::unordered_map never
 * moves nodes), so the cache is invalidated only by clear()/reset().
 */

#ifndef UNXPEC_MEMORY_MAIN_MEMORY_HH
#define UNXPEC_MEMORY_MAIN_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace unxpec {

/** Flat byte-addressable memory with sparse page allocation. */
class MainMemory
{
  public:
    MainMemory(const MemoryConfig &cfg, Rng &rng) : cfg_(cfg), rng_(rng) {}

    std::uint8_t read8(Addr addr) const;
    void write8(Addr addr, std::uint8_t value);

    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t value);

    /** Read `size` bytes little-endian (size in {1, 2, 4, 8}). */
    std::uint64_t read(Addr addr, unsigned size) const;
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** One DRAM access latency in cycles (jitter applied if enabled). */
    Cycle accessLatency();

    /** Adjust the base latency at run time (models DVFS/thermal drift
     *  shifting the cycles-per-DRAM-access ratio between rounds). */
    void setAccessLatency(unsigned cycles) { cfg_.accessLatency = cycles; }

    const MemoryConfig &config() const { return cfg_; }

    /** Drop all contents (fresh address space). */
    void
    clear()
    {
        pages_.clear();
        allocOrder_.clear();
        invalidatePageCache();
    }

    /**
     * Restore freshly-constructed state without deallocating: reinstate
     * the given config (undoing setAccessLatency) and zero every
     * allocated page in place — functionally identical to clear(),
     * since absent pages read as zero, but allocation-free on reuse
     * (Core::reset).
     */
    void reset(const MemoryConfig &cfg);

  private:
    static constexpr unsigned kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    /** Page for `page_number`, allocating on first touch. */
    Page &pageFor(Addr page_number);
    /** Page for `page_number`, nullptr when never written. */
    const Page *findPage(Addr page_number) const;

    void
    invalidatePageCache()
    {
        cachedPageNumber_ = kAddrInvalid;
        cachedPage_ = nullptr;
    }

    MemoryConfig cfg_;
    Rng &rng_;
    std::unordered_map<Addr, Page> pages_;
    /**
     * Allocated pages in first-touch order. The map is only ever used
     * for point lookups (hash iteration order is unspecified — a
     * reproducibility hazard lint_sim.py rejects); any walk over the
     * allocated pages goes through this deterministic side list
     * instead. Pointers are stable: unordered_map never moves nodes.
     */
    std::vector<Page *> allocOrder_;

    // Last-page cache: one entry, shared by reads and writes. mutable
    // so const reads can refresh it; purely an access-path memo, never
    // observable state.
    mutable Addr cachedPageNumber_ = kAddrInvalid;
    mutable const Page *cachedPage_ = nullptr;
};

} // namespace unxpec

#endif // UNXPEC_MEMORY_MAIN_MEMORY_HH
