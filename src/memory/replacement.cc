#include "memory/replacement.hh"

#include "sim/log.hh"

namespace unxpec {

unsigned
ReplacementState::victim(unsigned set, std::uint64_t allowed_mask)
{
    if (policy_ == ReplPolicy::LRU) {
        unsigned best = 0;
        std::uint64_t best_stamp = ~0ull;
        bool found = false;
        for (unsigned way = 0; way < ways_; ++way) {
            if (!(allowed_mask & (1ull << way)))
                continue;
            const auto stamp =
                stamps_[static_cast<std::size_t>(set) * ways_ + way];
            if (!found || stamp < best_stamp) {
                best = way;
                best_stamp = stamp;
                found = true;
            }
        }
        if (!found)
            panic("ReplacementState::victim: empty allowed mask");
        return best;
    }

    // Random: identical candidate collection and draw order as the
    // seed RandomPolicy so seeded runs stay bit-reproducible.
    unsigned candidates[64];
    unsigned count = 0;
    for (unsigned way = 0; way < ways_; ++way) {
        if (allowed_mask & (1ull << way))
            candidates[count++] = way;
    }
    if (count == 0)
        panic("ReplacementState::victim: empty allowed mask");
    return candidates[rng_.range(count)];
}

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(ReplPolicy policy, unsigned num_sets,
                          unsigned ways, Rng &rng)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return std::make_unique<LruPolicy>(num_sets, ways);
      case ReplPolicy::Random:
        return std::make_unique<RandomPolicy>(num_sets, ways, rng);
    }
    panic("unknown replacement policy");
}

LruPolicy::LruPolicy(unsigned num_sets, unsigned ways)
    : ReplacementPolicy(num_sets, ways),
      stamps_(static_cast<std::size_t>(num_sets) * ways, 0)
{
}

void
LruPolicy::touch(unsigned set, unsigned way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

void
LruPolicy::fill(unsigned set, unsigned way)
{
    touch(set, way);
}

unsigned
LruPolicy::victim(unsigned set, std::uint64_t allowed_mask)
{
    unsigned best = 0;
    std::uint64_t best_stamp = ~0ull;
    bool found = false;
    for (unsigned way = 0; way < ways_; ++way) {
        if (!(allowed_mask & (1ull << way)))
            continue;
        const auto stamp =
            stamps_[static_cast<std::size_t>(set) * ways_ + way];
        if (!found || stamp < best_stamp) {
            best = way;
            best_stamp = stamp;
            found = true;
        }
    }
    if (!found)
        panic("LruPolicy::victim: empty allowed mask");
    return best;
}

unsigned
RandomPolicy::victim(unsigned set, std::uint64_t allowed_mask)
{
    (void)set;
    unsigned candidates[64];
    unsigned count = 0;
    for (unsigned way = 0; way < ways_; ++way) {
        if (allowed_mask & (1ull << way))
            candidates[count++] = way;
    }
    if (count == 0)
        panic("RandomPolicy::victim: empty allowed mask");
    return candidates[rng_.range(count)];
}

} // namespace unxpec
