#include "memory/coherence.hh"

#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "memory/main_memory.hh"
#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

#include <map>
#include <string>
#include <utility>

namespace unxpec {

namespace {

/** Coherence-track instant, guarded like every other trace site. */
inline void
traceCoh(Tracer *tracer, TraceKind kind, Cycle now, Addr line,
         unsigned owner)
{
    if (!(kTraceEnabled && tracer != nullptr &&
          tracer->enabled(kTraceCatCoherence))) {
        return;
    }
    tracer->instantAt(now, kind, kSeqNone, line, owner,
                      static_cast<std::uint8_t>(owner));
}

} // namespace

CoherenceEngine::CoherenceEngine(const SystemConfig &cfg)
    : cfg_(cfg),
      protections_(cfg.cleanupMode != CleanupMode::UnsafeBaseline),
      stats_("coherence"),
      snoops_(stats_.counter("snoops", "L1-miss snoop broadcasts")),
      remoteHits_(stats_.counter("remote_hits",
                                 "snoops served by a remote L1 copy")),
      downgrades_(stats_.counter("downgrades",
                                 "immediate M/E->S downgrades")),
      delayedDowngrades_(stats_.counter(
          "delayed_downgrades",
          "downgrades deferred to the installer's commit (defense)")),
      dummyMisses_(stats_.counter(
          "dummy_misses", "speculative copies hidden as full misses")),
      remoteInvalidations_(stats_.counter(
          "remote_invalidations", "copies dropped by a remote write")),
      backInvalidations_(stats_.counter(
          "back_invalidations", "L1 copies dropped by shared-L2 eviction")),
      downgradeUndos_(stats_.counter(
          "downgrade_undos", "squash-time restorations of owner state"))
{
}

void
CoherenceEngine::attach(unsigned core_id, MemoryHierarchy *hier)
{
    if (cores_.size() <= core_id)
        // lint-ok(steady-alloc): machine-construction registration
        cores_.resize(core_id + 1, nullptr);
    cores_[core_id] = hier;
}

Cache &
CoherenceEngine::sharedL2() const
{
    return cores_[0]->l2();
}

CoherenceEngine::SnoopResult
CoherenceEngine::snoop(unsigned requester, Addr line, Cycle now, bool write,
                       bool speculative, MemAccessRecord &record)
{
    SnoopResult result;
    ++snoops_;
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == requester)
            continue;
        Cache &l1d = cores_[i]->l1d();
        CacheLine *hit = l1d.probeMutable(line);
        if (hit == nullptr || hit->fillCycle > now)
            continue;

        if (write) {
            // Write upgrade: every remote copy — S, E, M, even a
            // speculative fill in flight — is dropped. The backing
            // store is functional, so a dirty copy needs no timing
            // writeback here.
            l1d.invalidate(line);
            l1d.mshr().squash(line);
            ++remoteInvalidations_;
            traceCoh(tracer_, TraceKind::SnoopInvalidate, now, line, i);
            continue; // invalidate *all* sharers
        }

        if (protections_ && hit->speculative) {
            // §II-B: a defended speculative copy must be invisible.
            // Serve the requester a dummy miss and defer the M/E->S
            // downgrade until the installing load commits.
            coh::onDelayedDowngrade(*hit);
            ++dummyMisses_;
            ++delayedDowngrades_;
            result.dummyMiss = true;
            result.owner = i;
            traceCoh(tracer_, TraceKind::SnoopDummyMiss, now, line, i);
            traceCoh(tracer_, TraceKind::SnoopDelayedDowngrade, now, line,
                     i);
            return result;
        }

        const CohState prev = hit->coh;
        coh::onRemoteRead(*hit);
        if (!result.served) {
            result.served = true;
            result.owner = i;
            result.prevState = prev;
            ++remoteHits_;
            traceCoh(tracer_, TraceKind::SnoopServe, now, line, i);
            if (prev == CohState::Modified || prev == CohState::Exclusive) {
                result.downgraded = true;
                ++downgrades_;
                traceCoh(tracer_, TraceKind::SnoopDowngrade, now, line, i);
                if (speculative) {
                    // The requester may squash: remember what to undo.
                    record.snoopDowngrade = true;
                    record.snoopOwner = static_cast<std::uint8_t>(i);
                    record.snoopPrevState = prev;
                }
            }
        }
    }
    return result;
}

CrossCoreProbe
CoherenceEngine::remoteRead(unsigned requester, Addr addr, Cycle now)
{
    const Addr line = lineAlign(addr);
    // Drawn up front — hit or miss — so the jitter stream advances
    // identically on every probe, exactly like the retired fake.
    const Cycle miss_latency = cfg_.l1d.hitLatency + cfg_.l2.hitLatency +
                               cores_[0]->mem().accessLatency();
    const Cycle transfer_latency =
        cfg_.l1d.hitLatency + cfg_.l2.hitLatency;

    CrossCoreProbe probe;
    ++snoops_;

    auto dummy = [&](CacheLine &slot, unsigned owner) {
        coh::onDelayedDowngrade(slot);
        ++dummyMisses_;
        ++delayedDowngrades_;
        probe.hit = false;
        probe.dummyMiss = true;
        probe.ready = now + miss_latency;
        probe.observed = CohState::Invalid;
        traceCoh(tracer_, TraceKind::SnoopDummyMiss, now, line, owner);
        traceCoh(tracer_, TraceKind::SnoopDelayedDowngrade, now, line,
                 owner);
    };

    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == requester)
            continue;
        CacheLine *hit = cores_[i]->l1d().probeMutable(line);
        if (hit == nullptr || hit->fillCycle > now)
            continue;
        if (protections_ && hit->speculative) {
            dummy(*hit, i);
            return probe;
        }
        const CohState prev = hit->coh;
        coh::onRemoteRead(*hit);
        ++remoteHits_;
        traceCoh(tracer_, TraceKind::SnoopServe, now, line, i);
        if (prev == CohState::Modified || prev == CohState::Exclusive) {
            ++downgrades_;
            traceCoh(tracer_, TraceKind::SnoopDowngrade, now, line, i);
        }
        probe.hit = true;
        probe.ready = now + transfer_latency;
        probe.observed = hit->coh;
        return probe;
    }

    // No L1 copy: the shared L2 may still hold it.
    if (CacheLine *hit = sharedL2().probeMutable(line);
        hit != nullptr && hit->fillCycle <= now) {
        if (protections_ && hit->speculative) {
            dummy(*hit, 0);
            return probe;
        }
        ++remoteHits_;
        probe.hit = true;
        probe.ready = now + transfer_latency;
        probe.observed = hit->coh;
        return probe;
    }

    probe.hit = false;
    probe.ready = now + miss_latency;
    probe.observed = CohState::Invalid;
    return probe;
}

void
CoherenceEngine::invalidateRemote(unsigned writer, Addr line)
{
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == writer)
            continue;
        Cache &l1d = cores_[i]->l1d();
        if (l1d.probe(line) != nullptr) {
            l1d.invalidate(line);
            l1d.mshr().squash(line);
            ++remoteInvalidations_;
            traceCoh(tracer_, TraceKind::SnoopInvalidate,
                     tracer_ != nullptr ? tracer_->now() : 0, line, i);
        }
    }
}

void
CoherenceEngine::backInvalidate(Addr victim)
{
    if (victim == kAddrInvalid)
        return;
    for (unsigned i = 0; i < cores_.size(); ++i) {
        MemoryHierarchy *core = cores_[i];
        bool dropped = false;
        if (core->l1d().probe(victim) != nullptr) {
            core->l1d().invalidate(victim);
            core->l1d().mshr().squash(victim);
            dropped = true;
        }
        if (core->l1i().probe(victim) != nullptr) {
            core->l1i().invalidate(victim);
            dropped = true;
        }
        if (dropped) {
            ++backInvalidations_;
            traceCoh(tracer_, TraceKind::BackInvalidate,
                     tracer_ != nullptr ? tracer_->now() : 0, victim, i);
        }
    }
}

bool
CoherenceEngine::hideSharedSpeculative(CacheLine &slot, Addr line, Cycle now)
{
    if (!protections_ || !slot.speculative)
        return false;
    coh::onDelayedDowngrade(slot);
    ++dummyMisses_;
    ++delayedDowngrades_;
    traceCoh(tracer_, TraceKind::SnoopDummyMiss, now, line, 0);
    traceCoh(tracer_, TraceKind::SnoopDelayedDowngrade, now, line, 0);
    return true;
}

void
CoherenceEngine::ensureInclusion(Addr line, Cycle now)
{
    if (line == kAddrInvalid)
        return;
    if (sharedL2().probe(line) != nullptr)
        return;
    const FillResult fill = sharedL2().install(line, now, false, kSeqNone);
    if (fill.victimValid)
        backInvalidate(fill.victimLine);
}

bool
CoherenceEngine::flushAll(Addr line)
{
    bool dirty = false;
    for (MemoryHierarchy *core : cores_) {
        if (const CacheLine *hit = core->l1d().probe(line))
            dirty = dirty || hit->dirty;
        core->l1d().invalidate(line);
        core->l1i().invalidate(line);
        core->l1d().mshr().squash(line);
    }
    if (const CacheLine *hit = sharedL2().probe(line))
        dirty = dirty || hit->dirty;
    sharedL2().invalidate(line);
    sharedL2().mshr().squash(line);
    return dirty;
}

void
CoherenceEngine::undoSnoopDowngrade(const MemAccessRecord &record)
{
    if (!record.snoopDowngrade || record.snoopOwner >= cores_.size())
        return;
    CacheLine *slot =
        cores_[record.snoopOwner]->l1d().probeMutable(record.lineAddr);
    if (slot == nullptr)
        return;
    coh::onDowngradeUndo(*slot, record.snoopPrevState);
    ++downgradeUndos_;
    traceCoh(tracer_, TraceKind::DowngradeUndo,
             tracer_ != nullptr ? tracer_->now() : 0, record.lineAddr,
             record.snoopOwner);
}

void
CoherenceEngine::auditInvariants(Cycle now) const
{
    // 1. Single-writer: a line with an M/E owner has exactly one valid
    //    L1D copy across the machine.
    //    map line -> (valid copies, M/E owners, first M/E core).
    std::map<Addr, std::pair<unsigned, unsigned>> lines;
    for (unsigned i = 0; i < cores_.size(); ++i) {
        for (const Addr addr : cores_[i]->l1d().residentLines()) {
            const CacheLine *slot = cores_[i]->l1d().probe(addr);
            auto &entry = lines[addr];
            ++entry.first;
            if (slot->coh == CohState::Modified ||
                slot->coh == CohState::Exclusive) {
                ++entry.second;
            }
            // 3. A pending delayed downgrade only makes sense on a
            //    still-speculative copy: commit applies it, squash
            //    removes the line.
            if (slot->pendingDowngrade && !slot->speculative) {
                audit::fail("coherence", now,
                            "line " + std::to_string(addr) + " on core " +
                                std::to_string(i) +
                                " carries pendingDowngrade but is no "
                                "longer speculative");
            }
        }
    }
    for (const auto &[addr, entry] : lines) {
        if (entry.second > 1) {
            audit::fail("coherence", now,
                        "line " + std::to_string(addr) + " has " +
                            std::to_string(entry.second) +
                            " M/E owners across L1Ds");
        }
        if (entry.second == 1 && entry.first > 1) {
            audit::fail("coherence", now,
                        "line " + std::to_string(addr) +
                            " is M/E in one L1D but valid in " +
                            std::to_string(entry.first) + " L1Ds");
        }
    }

    // 2. Inclusion: every valid private-L1 line is resident in the
    //    shared L2.
    const Cache &l2 = sharedL2();
    for (unsigned i = 0; i < cores_.size(); ++i) {
        for (const Addr addr : cores_[i]->l1d().residentLines()) {
            if (l2.probe(addr) == nullptr) {
                audit::fail("coherence", now,
                            "line " + std::to_string(addr) +
                                " valid in core " + std::to_string(i) +
                                " L1D but absent from the shared L2");
            }
        }
        for (const Addr addr : cores_[i]->l1i().residentLines()) {
            if (l2.probe(addr) == nullptr) {
                audit::fail("coherence", now,
                            "line " + std::to_string(addr) +
                                " valid in core " + std::to_string(i) +
                                " L1I but absent from the shared L2");
            }
        }
    }
}

CrossCoreProbe
probeHierarchy(MemoryHierarchy &hier, Addr addr, Cycle now)
{
    const SystemConfig &cfg = hier.config();
    const Addr line = lineAlign(addr);
    const bool protections =
        cfg.cleanupMode != CleanupMode::UnsafeBaseline;
    const Cycle miss_latency = cfg.l1d.hitLatency + cfg.l2.hitLatency +
                               hier.mem().accessLatency();

    CrossCoreProbe probe;
    auto serve_from = [&](Cache &cache, Cycle hit_latency) -> bool {
        CacheLine *hit = cache.probeMutable(line);
        if (hit == nullptr || hit->fillCycle > now)
            return false;
        if (protections && hit->speculative) {
            // Dummy cache miss + delayed downgrade (§II-B).
            coh::onDelayedDowngrade(*hit);
            probe.hit = false;
            probe.dummyMiss = true;
            probe.ready = now + miss_latency;
            probe.observed = CohState::Invalid;
            return true;
        }
        coh::onRemoteRead(*hit);
        probe.hit = true;
        probe.ready = now + hit_latency;
        probe.observed = hit->coh;
        return true;
    };

    if (serve_from(hier.l1d(), cfg.l1d.hitLatency))
        return probe;
    if (serve_from(hier.l2(), cfg.l1d.hitLatency + cfg.l2.hitLatency))
        return probe;

    probe.hit = false;
    probe.ready = now + miss_latency;
    probe.observed = CohState::Invalid;
    return probe;
}

} // namespace unxpec
