#include "machine/machine.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace unxpec {

namespace {

/** Salted stream namespace for per-core seed derivation; disjoint from
 *  the harness's trial streams (plain indices) by construction. */
constexpr std::uint64_t kCoreSeedStream = 0xC04E5EEDull << 8;

} // namespace

std::uint64_t
Machine::coreSeed(std::uint64_t seed, unsigned index)
{
    // Core 0 keeps the machine seed so a 1-core Machine is
    // bit-identical to the historical bare Core(cfg).
    if (index == 0)
        return seed;
    return Rng::deriveSeed(seed, kCoreSeedStream + index);
}

Machine::Machine(const SystemConfig &cfg) : cfg_((cfg.validate(), cfg))
{
    if (cfg_.numCores > 1)
        engine_ = std::make_unique<CoherenceEngine>(cfg_);

    cores_.reserve(cfg_.numCores);
    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        SystemConfig core_cfg = cfg_;
        core_cfg.seed = coreSeed(cfg_.seed, i);
        cores_.push_back(std::make_unique<Core>(core_cfg));
        MemoryHierarchy &hier = cores_[i]->hierarchy();
        if (i > 0) {
            hier.bindShared(&cores_[0]->hierarchy().l2(),
                            &cores_[0]->hierarchy().mem());
        }
        if (engine_ != nullptr)
            hier.setCoherence(engine_.get(), i);
    }
}

RunResult
Machine::run(const Program &program, const RunOptions &options)
{
    return runOn(0, program, options);
}

RunResult
Machine::runOn(unsigned index, const Program &program,
               const RunOptions &options)
{
    if (cores_.size() > 1)
        syncClocks();
    return cores_[index]->run(program, options);
}

std::vector<RunResult>
Machine::runInterleaved(const std::vector<const Program *> &programs,
                        const RunOptions &options)
{
    if (programs.size() > cores_.size())
        fatal("Machine::runInterleaved: ", programs.size(),
              " programs for ", cores_.size(), " cores");

    syncClocks();
    std::vector<RunResult> results(cores_.size());
    std::vector<bool> running(cores_.size(), false);
    for (unsigned i = 0; i < programs.size(); ++i) {
        if (programs[i] == nullptr)
            continue;
        cores_[i]->runBegin(*programs[i], options);
        running[i] = true;
    }

    // Lockstep: every active core advances one cycle per round, in
    // index order — the deterministic interleaving every cross-core
    // experiment relies on.
    bool any = true;
    while (any) {
        any = false;
        for (unsigned i = 0; i < cores_.size(); ++i) {
            if (!running[i])
                continue;
            if (cores_[i]->runStep()) {
                any = true;
            } else {
                results[i] = cores_[i]->runFinish();
                running[i] = false;
            }
        }
    }
    return results;
}

void
Machine::syncClocks()
{
    Cycle latest = 0;
    for (const auto &core : cores_)
        latest = std::max(latest, core->now());
    for (auto &core : cores_)
        core->advanceTo(latest);
}

void
Machine::reset(std::uint64_t seed)
{
    cfg_.seed = seed;
    // Core 0 first: its reseed() rebuilds the shared L2/MainMemory the
    // other cores point into.
    for (unsigned i = 0; i < cores_.size(); ++i)
        cores_[i]->reset(coreSeed(seed, i));
    if (engine_ != nullptr)
        engine_->resetStats();
}

void
Machine::setCycleBudget(std::uint64_t cycles)
{
    for (auto &core : cores_)
        core->setCycleBudget(cycles);
}

bool
Machine::limitTripped() const
{
    for (const auto &core : cores_) {
        if (core->limitTripped())
            return true;
    }
    return false;
}

void
Machine::setRunYield(RunYield *yield)
{
    for (auto &core : cores_)
        core->setRunYield(yield);
}

void
Machine::setEventTrace(Tracer *tracer)
{
    for (auto &core : cores_)
        core->setEventTrace(tracer);
    if (engine_ != nullptr)
        engine_->setTracer(tracer);
}

void
Machine::auditInvariants() const
{
    for (const auto &core : cores_)
        core->auditInvariants();
    if (engine_ != nullptr) {
        Cycle latest = 0;
        for (const auto &core : cores_)
            latest = std::max(latest, core->now());
        engine_->auditInvariants(latest);
    }
}

} // namespace unxpec
