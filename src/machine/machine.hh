/**
 * @file
 * Machine layer: N real Core instances — each with private L1I/L1D —
 * sharing one L2 and one MainMemory (core 0's) through an explicit
 * MESI CoherenceEngine, driven by a deterministic cycle-interleaved
 * scheduler.
 *
 * Determinism rules (DESIGN.md "Machine and coherence"):
 *   - cores are constructed, reset, and stepped strictly in index
 *     order;
 *   - the engine holds no clock and draws no randomness — every
 *     coherence transaction happens synchronously inside the
 *     requesting core's access;
 *   - per-core seeds are derived from the machine seed with
 *     Rng::deriveSeed, so results are a pure function of
 *     (config, seed, programs);
 *   - clocks are synchronized (Core::advanceTo, never backwards)
 *     before each run phase so cross-core fillCycle comparisons are
 *     meaningful.
 *
 * A Machine with numCores == 1 builds exactly the historical
 * one-Core simulator — no engine is attached and every new code path
 * is skipped, which is what keeps 1-core artifacts byte-identical
 * (tests/golden).
 */

#ifndef UNXPEC_MACHINE_MACHINE_HH
#define UNXPEC_MACHINE_MACHINE_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "memory/coherence.hh"
#include "sim/config.hh"

namespace unxpec {

class Machine
{
  public:
    explicit Machine(const SystemConfig &cfg);

    // Cores hold references into the machine's shared levels.
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Core `index` (0 is the primary core owning the shared levels). */
    Core &core(unsigned index = 0) { return *cores_[index]; }
    const Core &core(unsigned index = 0) const { return *cores_[index]; }

    /** The coherence engine; nullptr on a single-core machine. */
    CoherenceEngine *coherence() { return engine_.get(); }

    /** Run a program on the primary core (single-core compat path). */
    RunResult run(const Program &program, const RunOptions &options = {});

    /**
     * Run a program on one specific core. Clocks are synchronized
     * first so the core observes every older remote fill as landed.
     */
    RunResult runOn(unsigned index, const Program &program,
                    const RunOptions &options = {});

    /**
     * Cycle-interleaved scheduler: one program per core (nullptr =
     * core idles), all stepped in lockstep, core 0 first each cycle.
     * Returns one RunResult per core (default-constructed for idle
     * cores).
     */
    std::vector<RunResult>
    runInterleaved(const std::vector<const Program *> &programs,
                   const RunOptions &options = {});

    /** Lift every core's clock to the machine-wide maximum. */
    void syncClocks();

    /**
     * Machine-wide reset: bit-identical to constructing
     * Machine(cfg with seed) — core 0 first (it reseeds the shared
     * L2/memory), then the remaining cores with re-derived seeds.
     */
    void reset(std::uint64_t seed);

    /** Trial cycle watchdog, applied to every core (Session). */
    void setCycleBudget(std::uint64_t cycles);

    /** True when any core tripped a cycle limit (censoring). */
    bool limitTripped() const;

    /** Attach an event tracer to every core (and the engine). */
    void setEventTrace(Tracer *tracer);

    /**
     * Install a run driver on every core (BatchRunner lock-step
     * batching; see RunYield in cpu/core.hh). runInterleaved is
     * unaffected — it steps cores directly and never enters
     * Core::run's yield point.
     */
    void setRunYield(RunYield *yield);

    /**
     * Whole-machine invariant audit: every core's structures plus the
     * cross-core coherence invariants. Throws AuditError.
     */
    void auditInvariants() const;

    const SystemConfig &config() const { return cfg_; }

  private:
    /** Seed for core `index` under machine seed `seed`. */
    static std::uint64_t coreSeed(std::uint64_t seed, unsigned index);

    SystemConfig cfg_;
    std::unique_ptr<CoherenceEngine> engine_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace unxpec

#endif // UNXPEC_MACHINE_MACHINE_HH
