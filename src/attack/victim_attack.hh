/**
 * @file
 * End-to-end key recovery against the secret-bearing victim programs
 * (victim/victim.hh): the attacker plants a real secret in the
 * victim's memory, drives the victim's speculative execution round by
 * round, and feeds the recorded probe latencies to the key-recovery
 * ranking (analysis/key_recovery.hh).
 *
 * AES: one run per (key byte, known plaintext) pair. The harness
 * pokes the byte index and plaintext into the listing's data cells,
 * the victim's measured round transiently touches
 * T[b & 3][pt ^ key[b]], and the run's Flush+Reload tail hands back
 * one reload latency per table entry. rankKeyByte() then orders all
 * 256 candidates per byte.
 *
 * RSA: one run per exponent bit. Each run records both receivers —
 * the multiplier-line reload (cache channel) and the dependent-
 * multiply probe time (FU contention) — and recoverExponent() splits
 * either series into bit guesses.
 *
 * Like ContentionAttack, this object is built directly by trial
 * functions (not cached in the session), so every trial derives its
 * state deterministically from the spec + seed.
 */

#ifndef UNXPEC_ATTACK_VICTIM_ATTACK_HH
#define UNXPEC_ATTACK_VICTIM_ATTACK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/key_recovery.hh"
#include "cpu/core.hh"
#include "victim/victim.hh"

namespace unxpec {

/** Attack-side knobs on top of the victim listing's shape. */
struct VictimAttackConfig
{
    VictimConfig victim;
    /** AES: known plaintexts per key byte (1..8). */
    unsigned plaintexts = 2;
    /** AES: best-vs-runner-up score floor for a confident byte. */
    double minMarginCycles = 16.0;
    /** RSA: cluster-gap floor for a confident bit split. */
    double minGapCycles = 8.0;
};

/** Per-byte AES recovery outcome. */
struct AesRecoveryResult
{
    std::array<std::uint8_t, 16> guess{};
    std::array<double, 16> margin{};
    std::array<bool, 16> confident{};
    unsigned confidentBytes = 0;
};

/** RSA exponent recovery outcome. */
struct RsaRecoveryResult
{
    std::uint64_t guess = 0;        //!< MSB-first recovered bits
    double gap = 0.0;               //!< widest cluster gap
    bool confident = false;         //!< gap cleared the floor
    std::vector<double> stats;      //!< per-bit receiver statistic
};

class VictimAttack
{
  public:
    VictimAttack(Core &core, const VictimAttackConfig &cfg);

    /** Plant the AES key in the victim's memory (AES listing only). */
    void setKey(const std::array<std::uint8_t, 16> &key);
    /** Plant the RSA exponent, MSB-first (RSA listing only). */
    void setExponent(std::uint64_t exponent);

    /** Recover all 16 key bytes, plaintext by plaintext. */
    AesRecoveryResult recoverAesKey();

    /** Recover the 64 exponent bits via the cache (default) or the
     *  FU-contention receiver. */
    RsaRecoveryResult recoverExponent(bool contention_receiver);

    /** The plaintext schedule recoverAesKey() runs (for reports). */
    std::vector<std::uint8_t> plaintextSchedule() const;

    const std::string &listing() const { return listing_.source; }
    std::uint64_t totalCycles() const { return totalCycles_; }
    unsigned totalRuns() const { return totalRuns_; }
    /** Mean simulated cycles per victim run. */
    double cyclesPerSample() const;

    /** Forget cross-trial state (parallel-harness hygiene). */
    void resetTrialState();

  private:
    void runOnce();
    /** One (byte, plaintext) AES run: per-entry reload latencies. */
    std::vector<double> runAesProbe(unsigned byte, std::uint8_t pt);
    /** One RSA run for exponent bit `bit`: {contention, reload}. */
    std::pair<double, double> runRsaBit(unsigned bit);

    Core &core_;
    VictimAttackConfig cfg_;
    VictimListing listing_;
    std::uint64_t oobIndex_ = 0; //!< secret base - training base
    bool dataLoaded_ = false;
    unsigned totalRuns_ = 0;
    std::uint64_t totalCycles_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_VICTIM_ATTACK_HH
