/**
 * @file
 * System-noise profiles. The paper's attacker model has the sender/
 * receiver thread temporally multiplexing the core with other honest
 * programs (§III-B); §VI-D argues the channel is robust to that noise.
 * A profile combines per-cycle "interrupt" stalls (other programs
 * stealing the core) with DRAM latency jitter (configured in
 * MemoryConfig at system construction).
 */

#ifndef UNXPEC_ATTACK_NOISE_HH
#define UNXPEC_ATTACK_NOISE_HH

#include "sim/config.hh"

namespace unxpec {

class Core;

/** Noise injected while the attack runs. */
struct NoiseProfile
{
    /** Per-cycle probability of an external stall event. */
    double interruptProbPerCycle = 0.0;
    /** Stall length bounds (cycles) when an event fires. */
    unsigned interruptStallMin = 0;
    unsigned interruptStallMax = 0;
    /** DRAM latency jitter (applied via MemoryConfig at construction). */
    double dramJitterSigma = 0.0;

    /** Silent machine: deterministic timing (calibration). */
    static NoiseProfile quiet();

    /**
     * Default evaluation noise: light background activity matching the
     * paper's single-sample accuracies (~87 % plain, ~92 % with
     * eviction sets).
     */
    static NoiseProfile evaluation();

    /** Heavier noise approximating a busy real host (§VI-D). */
    static NoiseProfile noisyHost();

    /** Configure the interrupt component on a core. */
    void applyTo(Core &core) const;

    /** Fold the DRAM-jitter component into a system config. */
    void applyTo(SystemConfig &cfg) const;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_NOISE_HH
