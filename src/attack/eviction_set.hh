/**
 * @file
 * Eviction-set construction (Vila et al., S&P'19). The unXpec
 * optimization primes the L1 sets that the secret-1 transient loads
 * map to, forcing every transient install to displace an attacker
 * line, which CleanupSpec must then restore — lengthening rollback and
 * enlarging the secret-dependent timing difference (paper §V-B).
 *
 * Two construction paths are provided:
 *  - direct: the L1 uses conventional modulo indexing, so congruent
 *    addresses can be computed outright (the paper's non-SMT threat
 *    model permits this);
 *  - group-testing reduction: the generic O(w·n) algorithm that
 *    shrinks a large candidate pool to a minimal eviction set using
 *    only an eviction oracle, for caches whose mapping is unknown.
 */

#ifndef UNXPEC_ATTACK_EVICTION_SET_HH
#define UNXPEC_ATTACK_EVICTION_SET_HH

#include <functional>
#include <vector>

#include "sim/types.hh"

namespace unxpec {

class Cache;

/** Builders for L1 eviction sets. */
class EvictionSet
{
  public:
    /**
     * Addresses congruent with `target` under modulo indexing:
     * `count` lines, starting from `pool_base`, that land in the same
     * set as `target` in a cache of `num_sets` sets.
     */
    static std::vector<Addr> direct(Addr target, unsigned num_sets,
                                    unsigned count, Addr pool_base);

    /**
     * Eviction oracle: does accessing `candidates` (then probing
     * `target`) evict `target`?
     */
    using Oracle =
        std::function<bool(const std::vector<Addr> &candidates,
                           Addr target)>;

    /**
     * Group-testing reduction: shrink `candidates` (which must evict
     * `target`) to a minimal eviction set of `ways` addresses.
     * Returns an empty vector when the pool never evicts the target.
     */
    static std::vector<Addr> reduce(std::vector<Addr> candidates,
                                    Addr target, unsigned ways,
                                    const Oracle &oracle);

    /**
     * Reference oracle running against a scratch copy of a cache
     * model: fill with candidates, then check the target was displaced
     * after being resident. Used by tests and by reduce() demos.
     */
    static Oracle modelOracle(const Cache &prototype,
                              std::uint64_t seed);
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_EVICTION_SET_HH
