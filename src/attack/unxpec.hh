/**
 * @file
 * The unXpec attack (paper §V, Fig. 4). One program run performs
 * `mistrainIterations` in-bounds executions of the sender branch (the
 * POISON phase) followed by one out-of-bounds round whose observed
 * latency encodes the secret bit:
 *
 *   preparation   mistrain branch; clflush the f(N) chain and
 *                 P[64*1..64*n]; load P[0]; (optionally prime the L1
 *                 sets of P[64*k] with eviction sets)
 *   measurement   FENCE; t0 = rdtscp; resolve `if (index < f(N))`
 *                 while the transient body loads P[secret*64*k];
 *                 mis-speculation detected -> CleanupSpec rollback;
 *                 t1 = rdtscp on the redirected correct path
 *
 * secret=0: the transient loads hit P[0] (pre-loaded), nothing to roll
 * back, t1-t0 is short. secret=1: the loads install P[64*k] (flushed),
 * rollback invalidates them (and restores primed victims), t1-t0 is
 * ~22 (or ~32 with eviction sets) cycles longer.
 */

#ifndef UNXPEC_ATTACK_UNXPEC_HH
#define UNXPEC_ATTACK_UNXPEC_HH

#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace unxpec {

/** Attack parameters (paper §V-C discusses their tuning). */
struct UnxpecConfig
{
    /** Loads inside the transient branch (n of Algorithm 2). */
    unsigned inBranchLoads = 1;
    /** Dependent memory accesses in the branch condition (N of f(N)). */
    unsigned conditionAccesses = 1;
    /**
     * Dependent ALU operations appended to f(N) before the compare;
     * the paper's knob for making branch resolution "sufficiently long
     * to cover the execution of transient instructions" (§IV-A).
     */
    unsigned conditionPadding = 37;
    /** Prime P[64*k] sets to force restorations (§V-B optimization). */
    bool useEvictionSets = false;
    /** In-bounds POISON executions before the out-of-bounds round. */
    unsigned mistrainIterations = 16;
    /**
     * Flush+Reload persistence tail: after the squash window, time a
     * reload of P[64] (the k=1 transient target) and fold it into the
     * reported latency. Defenses that leave transient installs behind
     * (the unsafe baseline) make the reload hit iff secret=1 — the
     * classic persistent-state channel; undo and invisible defenses
     * make it miss either way, adding only a constant. Off by default:
     * the figure benches measure the bare rollback window.
     */
    bool probePersistence = false;
};

/** Field-wise equality (CorePool attack-cache validity check). */
inline bool
operator==(const UnxpecConfig &a, const UnxpecConfig &b)
{
    return a.inBranchLoads == b.inBranchLoads &&
           a.conditionAccesses == b.conditionAccesses &&
           a.conditionPadding == b.conditionPadding &&
           a.useEvictionSets == b.useEvictionSets &&
           a.mistrainIterations == b.mistrainIterations &&
           a.probePersistence == b.probePersistence;
}

inline bool
operator!=(const UnxpecConfig &a, const UnxpecConfig &b)
{
    return !(a == b);
}

/**
 * Named preset of the attack, registered for selection by name from
 * the experiment harness (`--mode`-style CLI flags, ExperimentSpec
 * files). New variants defined here become selectable everywhere
 * without touching the harness.
 */
struct UnxpecVariant
{
    const char *name;        //!< registry key, e.g. "unxpec-evset"
    const char *description; //!< one-line help text
    void (*apply)(UnxpecConfig &cfg); //!< configure a base UnxpecConfig
};

/** Built-in attack variants (paper §V-B/§V-C operating points). */
const std::vector<UnxpecVariant> &unxpecVariants();

/** Per-round instrumentation extracted from the cleanup log. */
struct RoundDetail
{
    double latency = 0.0;        //!< receiver-observed t1 - t0
    Cycle t0 = 0;                //!< first timestamp (absolute cycle)
    Cycle branchResolution = 0;  //!< T1-T2: t0 to mis-speculation detect
    Cycle cleanupStall = 0;      //!< T5 stall charged by the rollback
    unsigned invalidationsL1 = 0;
    unsigned invalidationsL2 = 0;
    unsigned restores = 0;
    bool valid = false;          //!< squash located in the cleanup log
};

/** Outcome of leaking a bit string. */
struct LeakResult
{
    std::vector<int> guesses;
    std::vector<double> latencies;
    double accuracy = 0.0;
};

/** Orchestrates unXpec rounds on a core. */
class UnxpecAttack
{
  public:
    UnxpecAttack(Core &core, const UnxpecConfig &cfg = {});

    /** Write the one-bit secret the sender will transmit. */
    void setSecret(int bit);

    /** One program run (POISON + one measured round). */
    double measureOnce();

    /** Instrumentation for the most recent measured round. */
    const RoundDetail &lastDetail() const { return last_; }

    /** Collect `samples` measurements for a fixed secret. */
    std::vector<double> collect(int secret, unsigned samples);

    /**
     * Calibrate the decode threshold from `samples` measurements per
     * secret value (the receiver's training phase).
     */
    double calibrate(unsigned samples_per_secret);

    /** Leak a bit string, one sample per bit (paper §VI-C). */
    LeakResult leak(const std::vector<int> &secret_bits, double threshold);

    /**
     * Leak a bit string with majority vote over `samples_per_bit`
     * measurements per bit (§VI-D: more samples suppress noise).
     */
    LeakResult leakMultiSample(const std::vector<int> &secret_bits,
                               double threshold,
                               unsigned samples_per_bit);

    /** Leak whole bytes (MSB first), one sample per bit. */
    std::vector<std::uint8_t>
    leakBytes(const std::vector<std::uint8_t> &secret, double threshold,
              unsigned samples_per_bit = 1);

    /** Mean simulated cycles consumed per measurement (sample). */
    double cyclesPerSample() const;

    /**
     * Restore freshly-constructed per-trial state so a cached attack
     * can serve a new trial on the same (re-seeded) core. The program
     * and data layout are a pure function of (core config, cfg) — no
     * randomness enters construction — so only the mutable trial
     * state needs clearing; a reset attack behaves bit-identically to
     * a newly constructed one (CorePool attack cache).
     */
    void resetTrialState();

    const UnxpecConfig &config() const { return cfg_; }
    const Program &program() const { return program_; }
    Core &core() { return core_; }

  private:
    void buildProgram();

    Core &core_;
    UnxpecConfig cfg_;
    Program program_;

    // Data-segment layout.
    Addr pBase_ = 0;
    Addr aBase_ = 0;
    Addr idxBase_ = 0;
    Addr latBase_ = 0;
    Addr t0Base_ = 0;
    Addr chainBase_ = 0;
    Addr secretAddr_ = 0;
    std::vector<Addr> evictionAddrs_;
    unsigned trials_ = 0;

    bool dataLoaded_ = false;
    RoundDetail last_;
    std::uint64_t totalRuns_ = 0;
    std::uint64_t totalCycles_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_UNXPEC_HH
