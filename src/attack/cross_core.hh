/**
 * @file
 * Cross-core unXpec variant (paper §II-B's coherence channel, ported
 * onto the Machine layer). The sender runs the usual mistrained
 * transient branch on core 0; the transient body installs
 * P[secret*64] into core 0's private L1 (and, by inclusion, the
 * shared L2). The receiver then runs on core 1 and times a single
 * probe of P[64]:
 *
 *   sender (core 0)    POISON iterations; clflush f(N) chain and
 *                      P[64*1..64*n] machine-wide; out-of-bounds
 *                      round transiently loads P[secret*64*k]
 *   receiver (core 1)  FENCE; t0 = rdtscp; load P[64]; t1 = rdtscp
 *
 * Unsafe baseline: secret=1 leaves P[64] resident (snoop / shared-L2
 * hit, short t1-t0); secret=0 leaves it flushed (memory fill, long
 * t1-t0) — the bit is readable across cores. Undo-based defenses
 * roll the transient install back out of L1 and L2, and the
 * coherence engine's dummy-miss / delayed-downgrade path hides any
 * still-speculative copy, so both secrets time as misses.
 */

#ifndef UNXPEC_ATTACK_CROSS_CORE_HH
#define UNXPEC_ATTACK_CROSS_CORE_HH

#include <cstdint>
#include <vector>

#include "attack/unxpec.hh"
#include "cpu/program.hh"
#include "machine/machine.hh"
#include "sim/types.hh"

namespace unxpec {

/** Orchestrates cross-core unXpec rounds on a multi-core Machine. */
class CrossCoreAttack
{
  public:
    /** Requires machine.numCores() >= 2 (fatal otherwise). */
    CrossCoreAttack(Machine &machine, const UnxpecConfig &cfg = {});

    /** Write the one-bit secret the sender will transmit. */
    void setSecret(int bit);

    /**
     * One round: sender program on core 0, then the receiver probe on
     * core 1. Returns the receiver-observed probe latency t1 - t0.
     */
    double measureOnce();

    /** Collect `samples` measurements for a fixed secret. */
    std::vector<double> collect(int secret, unsigned samples);

    /**
     * Calibrate the decode threshold (receiver training phase). The
     * cross-core channel is inverted relative to the same-core
     * Flush+Reload decoders: secret=1 leaves the probe line resident
     * (snoop / shared-L2 hit), so it times FASTER. The returned
     * threshold therefore lives in the negated-latency domain and is
     * only meaningful to pass back into leak().
     */
    double calibrate(unsigned samples_per_secret);

    /**
     * ROC AUC of the receiver's classifier over `samples_per_secret`
     * fresh measurements per secret value (channel-quality metric:
     * 1.0 = perfectly separable, 0.5 = closed channel). Computed on
     * negated latencies so that, as everywhere else in the harness,
     * 1.0 (not 0.0) means a perfectly leaky channel.
     */
    double aucScore(unsigned samples_per_secret);

    /** Leak a bit string, one sample per bit (threshold from
     *  calibrate(); LeakResult::latencies stay raw cycles). */
    LeakResult leak(const std::vector<int> &secret_bits, double threshold);

    /** Mean simulated cycles consumed per measurement, both cores. */
    double cyclesPerSample() const;

    const UnxpecConfig &config() const { return cfg_; }
    const Program &senderProgram() const { return sender_; }
    const Program &receiverProgram() const { return receiver_; }
    Machine &machine() { return machine_; }

  private:
    void buildPrograms();

    Machine &machine_;
    UnxpecConfig cfg_;
    Program sender_;
    Program receiver_;

    // Data-segment layout: allocated once by the sender's builder (the
    // cores share one MainMemory, so the receiver reuses the addresses
    // as immediates instead of re-allocating over them).
    Addr pBase_ = 0;
    Addr aBase_ = 0;
    Addr chainBase_ = 0;
    Addr idxBase_ = 0;
    Addr secretAddr_ = 0;
    Addr rxLatBase_ = 0;
    Addr rxT0Base_ = 0;
    unsigned trials_ = 0;

    bool dataLoaded_ = false;
    std::uint64_t totalRuns_ = 0;
    std::uint64_t totalCycles_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_CROSS_CORE_HH
