#include "attack/channel.hh"

#include <algorithm>

#include "sim/log.hh"

namespace unxpec {

double
CovertChannel::calibrateThreshold(const std::vector<double> &zeros,
                                  const std::vector<double> &ones)
{
    if (zeros.empty() || ones.empty())
        fatal("CovertChannel::calibrateThreshold: empty calibration set");

    // Candidate thresholds: every observed value. O(n^2) is fine at
    // calibration sizes (thousands of samples).
    std::vector<double> candidates = zeros;
    candidates.insert(candidates.end(), ones.begin(), ones.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    std::vector<double> sorted_zeros = zeros;
    std::vector<double> sorted_ones = ones;
    std::sort(sorted_zeros.begin(), sorted_zeros.end());
    std::sort(sorted_ones.begin(), sorted_ones.end());

    double best_threshold = candidates.front();
    double best_errors = static_cast<double>(zeros.size() + ones.size());

    for (const double threshold : candidates) {
        // zeros misclassified: value > threshold.
        const auto zero_errors = sorted_zeros.end() -
            std::upper_bound(sorted_zeros.begin(), sorted_zeros.end(),
                             threshold);
        // ones misclassified: value <= threshold.
        const auto one_errors =
            std::upper_bound(sorted_ones.begin(), sorted_ones.end(),
                             threshold) - sorted_ones.begin();
        const double errors =
            static_cast<double>(zero_errors) / sorted_zeros.size() +
            static_cast<double>(one_errors) / sorted_ones.size();
        if (errors < best_errors) {
            best_errors = errors;
            best_threshold = threshold;
        }
    }
    return best_threshold;
}

int
CovertChannel::decodeMajority(const std::vector<double> &samples,
                              double threshold)
{
    int votes = 0;
    for (const double sample : samples)
        votes += decode(sample, threshold);
    return votes * 2 > static_cast<int>(samples.size()) ? 1 : 0;
}

double
CovertChannel::accuracy(const std::vector<int> &guesses,
                        const std::vector<int> &secret)
{
    if (guesses.size() != secret.size() || guesses.empty())
        fatal("CovertChannel::accuracy: size mismatch");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < guesses.size(); ++i) {
        if (guesses[i] == secret[i])
            ++correct;
    }
    return static_cast<double>(correct) / guesses.size();
}

} // namespace unxpec
