#include "attack/unxpec.hh"

#include <algorithm>

#include "attack/channel.hh"
#include "attack/eviction_set.hh"
#include "sim/log.hh"

namespace unxpec {

namespace {

// Register allocation for the attack program.
constexpr RegIndex rIdx = 1;      // index for the current trial
constexpr RegIndex rBound = 2;    // f(N) chain / bound value
constexpr RegIndex rSecret = 3;   // transiently loaded secret
constexpr RegIndex rP = 4;        // P base
constexpr RegIndex rA = 5;        // A base
constexpr RegIndex rIdxTab = 6;   // index-table base
constexpr RegIndex rLatTab = 7;   // latency-result base
constexpr RegIndex rTmp0 = 8;
constexpr RegIndex rTmp1 = 9;
constexpr RegIndex rTmp2 = 10;
constexpr RegIndex rScaled = 11;  // secret * 64
constexpr RegIndex rTmp3 = 12;
constexpr RegIndex rPtr = 13;     // walking pointer over P
constexpr RegIndex rTmp4 = 14;
constexpr RegIndex rDelta = 15;   // measured latency
constexpr RegIndex rTmp5 = 16;
constexpr RegIndex rTrial = 17;   // trial counter
constexpr RegIndex rTrials = 18;  // trial count
constexpr RegIndex rChain = 19;   // f(N) chain base
constexpr RegIndex rT0Tab = 20;   // t0-result base
constexpr RegIndex rT0 = 24;      // first timestamp
constexpr RegIndex rT1 = 25;      // second timestamp

} // namespace

const std::vector<UnxpecVariant> &
unxpecVariants()
{
    static const std::vector<UnxpecVariant> variants = {
        {"unxpec", "plain rollback-timing channel (~22-cycle delta)",
         [](UnxpecConfig &) {}},
        {"unxpec-evset",
         "eviction sets prime the target L1 sets, forcing restorations "
         "(~32-cycle delta, SV-B)",
         [](UnxpecConfig &cfg) { cfg.useEvictionSets = true; }},
        {"unxpec-wide",
         "eviction-set variant with 8 in-branch loads: maximum margin "
         "at proportional rate cost (SV-C)",
         [](UnxpecConfig &cfg) {
             cfg.useEvictionSets = true;
             cfg.inBranchLoads = 8;
         }},
        {"unxpec-fast",
         "short POISON loop (8 mistrainings): maximum sample rate",
         [](UnxpecConfig &cfg) { cfg.mistrainIterations = 8; }},
        {"unxpec-probe",
         "rollback timing plus a Flush+Reload persistence tail: the "
         "matrix's cache-state receiver (also reads the unsafe "
         "baseline's persistent installs)",
         [](UnxpecConfig &cfg) { cfg.probePersistence = true; }},
        {"unxpec-xcore",
         "cross-core variant: a receiver core times coherence "
         "downgrades of the sender's transient install (needs "
         "cores >= 2)",
         [](UnxpecConfig &) {}},
    };
    return variants;
}

UnxpecAttack::UnxpecAttack(Core &core, const UnxpecConfig &cfg)
    : core_(core), cfg_(cfg)
{
    if (cfg_.inBranchLoads == 0)
        fatal("UnxpecAttack: need at least one in-branch load");
    if (cfg_.conditionAccesses == 0)
        fatal("UnxpecAttack: f(N) needs at least one access");
    trials_ = cfg_.mistrainIterations + 1;
    buildProgram();
}

void
UnxpecAttack::buildProgram()
{
    const unsigned n = cfg_.inBranchLoads;
    const unsigned c = cfg_.conditionAccesses;
    ProgramBuilder b;

    // ---- data segment ------------------------------------------------
    pBase_ = b.alloc(kLineBytes * (n + 1));
    aBase_ = b.alloc(kLineBytes);
    secretAddr_ = b.alloc(kLineBytes);
    chainBase_ = b.alloc(kLineBytes * c);
    idxBase_ = b.alloc(8 * trials_);
    latBase_ = b.alloc(8 * trials_);
    t0Base_ = b.alloc(8 * trials_);

    // A[0] = 0: training rounds transmit "secret 0" (loads hit P[0]).
    b.initByte(aBase_, 0);
    // Out-of-bounds index reaching the victim's secret byte.
    const std::uint64_t oob_index = secretAddr_ - aBase_;
    // f(N) pointer chase; the last element holds the bound (1), so the
    // trained in-bounds index 0 satisfies index < bound.
    for (unsigned j = 0; j + 1 < c; ++j)
        b.initWord64(chainBase_ + j * kLineBytes,
                     chainBase_ + (j + 1) * kLineBytes);
    b.initWord64(chainBase_ + (c - 1) * kLineBytes, 1);
    // Index table: POISON uses in-bounds 0; the final trial goes
    // out of bounds.
    for (unsigned t = 0; t + 1 < trials_; ++t)
        b.initWord64(idxBase_ + 8 * t, 0);
    b.initWord64(idxBase_ + 8 * (trials_ - 1), oob_index);

    if (cfg_.useEvictionSets) {
        const unsigned l1_sets = core_.config().l1d.numSets();
        const unsigned l1_ways = core_.config().l1d.ways;
        const Addr pool =
            b.alloc(static_cast<std::size_t>(l1_sets) * l1_ways *
                    kLineBytes * 2);
        evictionAddrs_.clear();
        for (unsigned k = 1; k <= n; ++k) {
            const auto set_addrs = EvictionSet::direct(
                pBase_ + k * kLineBytes, l1_sets, l1_ways, pool);
            evictionAddrs_.insert(evictionAddrs_.end(), set_addrs.begin(),
                                  set_addrs.end());
        }
    }

    // ---- code ----------------------------------------------------------
    b.li(rP, static_cast<std::int64_t>(pBase_));
    b.li(rA, static_cast<std::int64_t>(aBase_));
    b.li(rIdxTab, static_cast<std::int64_t>(idxBase_));
    b.li(rLatTab, static_cast<std::int64_t>(latBase_));
    b.li(rT0Tab, static_cast<std::int64_t>(t0Base_));
    b.li(rChain, static_cast<std::int64_t>(chainBase_));
    b.li(rTrial, 0);
    b.li(rTrials, trials_);

    // Sender-side warmup: the victim touches its own secret, so the
    // transient secret load hits and the dependent loads issue early.
    b.li(rTmp0, static_cast<std::int64_t>(secretAddr_));
    b.load(rTmp1, rTmp0, 0, 1);

    // Prime P[64*k]'s L1 sets with the eviction set (§V-B). Rollback
    // restores displaced lines, so in a quiet machine priming once
    // keeps the sets primed for every subsequent round (§VI-B).
    for (const Addr addr : evictionAddrs_) {
        b.li(rTmp0, static_cast<std::int64_t>(addr));
        b.load(rTmp1, rTmp0);
    }
    // Bring P[0] in once.
    b.load(rTmp1, rP);

    const int loop_top = b.label();
    const int skip = b.label();
    b.bind(loop_top);

    // index = idxTable[trial]
    b.shl(rTmp0, rTrial, 3);
    b.add(rTmp0, rTmp0, rIdxTab);
    b.load(rIdx, rTmp0);

    // Flush the f(N) chain (clflush &N of §VI-A) and P[64*1..64*n].
    for (unsigned j = 0; j < c; ++j)
        b.clflush(rChain, static_cast<std::int64_t>(j) * kLineBytes);
    for (unsigned k = 1; k <= n; ++k)
        b.clflush(rP, static_cast<std::int64_t>(k) * kLineBytes);
    // (Re-)load P[0]: secret 0 must produce all-hits.
    b.load(rTmp1, rP);

    // Measurement stage: fence zeroes out T4, then t0.
    b.fence();
    b.rdtscp(rT0);

    // Branch condition: pointer-chase f(N)...
    b.mov(rBound, rChain);
    for (unsigned j = 0; j < c; ++j)
        b.load(rBound, rBound);
    // ...plus dependent padding so resolution covers the transient
    // loads' fills.
    for (unsigned p = 0; p < cfg_.conditionPadding; ++p)
        b.addi(rBound, rBound, 0);

    // if (index < bound) { transient body } — trained not-taken.
    b.bge(rIdx, rBound, skip);

    // Transient body: secret = A[index]; load P[secret*64*k].
    b.add(rTmp2, rA, rIdx);
    b.load(rSecret, rTmp2, 0, 1);
    b.shl(rScaled, rSecret, 6);
    b.mov(rPtr, rP);
    for (unsigned k = 1; k <= n; ++k) {
        b.add(rPtr, rPtr, rScaled);
        b.load(rTmp4, rPtr);
    }

    b.bind(skip);
    b.rdtscp(rT1);
    b.sub(rDelta, rT1, rT0);

    if (cfg_.probePersistence) {
        // Flush+Reload tail: reload the k=1 transient target and fold
        // the reload time in; next round's clflush of P[64*k] resets
        // the probe. The address is chained off the serializing t2
        // read (t2 ^ t2 = 0) — the skip path is also the transient
        // body's fall-through, so an unchained reload would issue
        // inside the window and warm its own target in both classes.
        b.rdtscp(rTmp2);
        b.xor_(rTmp4, rTmp2, rTmp2);
        b.add(rTmp4, rTmp4, rP);
        b.load(rTmp4, rTmp4, kLineBytes);
        b.rdtscp(rPtr);
        b.sub(rTmp4, rPtr, rTmp2);
        b.add(rDelta, rDelta, rTmp4);
    }

    // Record latency and t0 for this trial.
    b.shl(rTmp5, rTrial, 3);
    b.add(rTmp3, rTmp5, rLatTab);
    b.store(rTmp3, 0, rDelta);
    b.add(rTmp3, rTmp5, rT0Tab);
    b.store(rTmp3, 0, rT0);

    b.addi(rTrial, rTrial, 1);
    b.blt(rTrial, rTrials, loop_top);
    b.halt();

    program_ = b.build();
    dataLoaded_ = false;
}

void
UnxpecAttack::setSecret(int bit)
{
    core_.mem().write8(secretAddr_, bit ? 1 : 0);
}

double
UnxpecAttack::measureOnce()
{
    CleanupEngine &engine = core_.cleanup();
    engine.clearLog();
    engine.enableLog(true);

    RunOptions options;
    options.loadData = !dataLoaded_;
    const RunResult result = core_.run(program_, options);
    dataLoaded_ = true;
    engine.enableLog(false);

    ++totalRuns_;
    totalCycles_ += result.cycles;

    const unsigned final_trial = trials_ - 1;
    const double latency = static_cast<double>(
        core_.mem().read64(latBase_ + 8 * final_trial));
    const Cycle t0 = core_.mem().read64(t0Base_ + 8 * final_trial);

    last_ = RoundDetail{};
    last_.latency = latency;
    last_.t0 = t0;
    for (const SquashLog &log : engine.log()) {
        if (log.cycle >= t0 &&
            log.cycle <= t0 + static_cast<Cycle>(latency)) {
            last_.branchResolution = log.cycle - t0;
            last_.cleanupStall = log.stall;
            last_.invalidationsL1 = log.l1Invalidations;
            last_.invalidationsL2 = log.l2Invalidations;
            last_.restores = log.restores;
            last_.valid = true;
            break;
        }
    }
    return latency;
}

std::vector<double>
UnxpecAttack::collect(int secret, unsigned samples)
{
    setSecret(secret);
    std::vector<double> measurements;
    measurements.reserve(samples);
    for (unsigned i = 0; i < samples; ++i)
        measurements.push_back(measureOnce());
    return measurements;
}

double
UnxpecAttack::calibrate(unsigned samples_per_secret)
{
    const auto zeros = collect(0, samples_per_secret);
    const auto ones = collect(1, samples_per_secret);
    return CovertChannel::calibrateThreshold(zeros, ones);
}

LeakResult
UnxpecAttack::leak(const std::vector<int> &secret_bits, double threshold)
{
    LeakResult result;
    result.guesses.reserve(secret_bits.size());
    result.latencies.reserve(secret_bits.size());
    for (const int bit : secret_bits) {
        setSecret(bit);
        const double latency = measureOnce();
        result.latencies.push_back(latency);
        result.guesses.push_back(CovertChannel::decode(latency, threshold));
    }
    result.accuracy = CovertChannel::accuracy(result.guesses, secret_bits);
    return result;
}

LeakResult
UnxpecAttack::leakMultiSample(const std::vector<int> &secret_bits,
                              double threshold, unsigned samples_per_bit)
{
    if (samples_per_bit == 0)
        fatal("UnxpecAttack::leakMultiSample: need at least one sample");
    LeakResult result;
    result.guesses.reserve(secret_bits.size());
    result.latencies.reserve(secret_bits.size());
    for (const int bit : secret_bits) {
        setSecret(bit);
        std::vector<double> samples;
        samples.reserve(samples_per_bit);
        for (unsigned s = 0; s < samples_per_bit; ++s)
            samples.push_back(measureOnce());
        result.latencies.push_back(samples.front());
        result.guesses.push_back(
            CovertChannel::decodeMajority(samples, threshold));
    }
    result.accuracy = CovertChannel::accuracy(result.guesses, secret_bits);
    return result;
}

std::vector<std::uint8_t>
UnxpecAttack::leakBytes(const std::vector<std::uint8_t> &secret,
                        double threshold, unsigned samples_per_bit)
{
    std::vector<int> bits;
    bits.reserve(secret.size() * 8);
    for (const std::uint8_t byte : secret) {
        for (int bit = 7; bit >= 0; --bit)
            bits.push_back((byte >> bit) & 1);
    }
    const LeakResult result = samples_per_bit <= 1
        ? leak(bits, threshold)
        : leakMultiSample(bits, threshold, samples_per_bit);

    std::vector<std::uint8_t> received;
    received.reserve(secret.size());
    for (std::size_t i = 0; i < secret.size(); ++i) {
        std::uint8_t byte = 0;
        for (unsigned bit = 0; bit < 8; ++bit)
            byte = static_cast<std::uint8_t>(
                (byte << 1) | result.guesses[i * 8 + bit]);
        received.push_back(byte);
    }
    return received;
}

double
UnxpecAttack::cyclesPerSample() const
{
    return totalRuns_ == 0
        ? 0.0
        : static_cast<double>(totalCycles_) / totalRuns_;
}

void
UnxpecAttack::resetTrialState()
{
    // Everything else (program, data layout, eviction addresses,
    // trials_) is derived deterministically from the configs in the
    // constructor and stays valid across trials on the same config.
    dataLoaded_ = false;
    last_ = RoundDetail{};
    totalRuns_ = 0;
    totalCycles_ = 0;
}

} // namespace unxpec
