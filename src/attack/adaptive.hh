/**
 * @file
 * Adaptive online decoder. A fixed threshold (paper §VI-A picks 178 /
 * 183 once) is brittle when the environment drifts — DVFS, thermal
 * throttling, or contention slowly shift the whole latency
 * distribution. The adaptive decoder tracks both class means with
 * exponential moving averages and keeps the decision boundary at
 * their midpoint, so the channel survives drift that would defeat the
 * calibrated-once receiver.
 */

#ifndef UNXPEC_ATTACK_ADAPTIVE_HH
#define UNXPEC_ATTACK_ADAPTIVE_HH

namespace unxpec {

/** Self-calibrating two-cluster decoder. */
class AdaptiveDecoder
{
  public:
    /**
     * @param initial_threshold  starting boundary (from calibrate())
     * @param expected_delta     prior on the class separation (the
     *                           channel's ~22 or ~32 cycles), used to
     *                           seed the cluster means
     * @param alpha              EMA weight of each new observation
     */
    AdaptiveDecoder(double initial_threshold, double expected_delta = 22.0,
                    double alpha = 0.08);

    /** Classify one latency and fold it into the matched cluster. */
    int decode(double latency);

    /** Current decision boundary. */
    double threshold() const { return (mean0_ + mean1_) / 2.0; }

    double mean0() const { return mean0_; }
    double mean1() const { return mean1_; }

  private:
    double mean0_;
    double mean1_;
    double alpha_;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_ADAPTIVE_HH
