#include "attack/eviction_set.hh"

#include <algorithm>

#include "memory/cache.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace unxpec {

std::vector<Addr>
EvictionSet::direct(Addr target, unsigned num_sets, unsigned count,
                    Addr pool_base)
{
    const Addr target_line = lineNumber(lineAlign(target));
    const unsigned target_set =
        static_cast<unsigned>(target_line % num_sets);

    std::vector<Addr> set_addresses;
    Addr line = lineNumber(lineAlign(pool_base));
    // Advance to the first pool line in the target's set.
    const unsigned pool_set = static_cast<unsigned>(line % num_sets);
    line += (target_set + num_sets - pool_set) % num_sets;

    while (set_addresses.size() < count) {
        const Addr addr = line << kLineShift;
        if (addr != lineAlign(target))
            set_addresses.push_back(addr);
        line += num_sets; // next congruent line
    }
    return set_addresses;
}

std::vector<Addr>
EvictionSet::reduce(std::vector<Addr> candidates, Addr target,
                    unsigned ways, const Oracle &oracle)
{
    if (!oracle(candidates, target))
        return {};

    // Vila et al. group-testing: repeatedly split into ways+1 groups
    // and discard one whose removal preserves eviction. A minimal
    // eviction set of `ways` lines always allows such a discard.
    while (candidates.size() > ways) {
        const unsigned groups = ways + 1;
        const std::size_t chunk =
            (candidates.size() + groups - 1) / groups;

        bool removed = false;
        for (unsigned g = 0; g < groups && !removed; ++g) {
            const std::size_t begin =
                std::min(candidates.size(), g * chunk);
            const std::size_t end =
                std::min(candidates.size(), begin + chunk);
            if (begin == end)
                continue;

            std::vector<Addr> trimmed;
            trimmed.reserve(candidates.size() - (end - begin));
            trimmed.insert(trimmed.end(), candidates.begin(),
                           candidates.begin() + begin);
            trimmed.insert(trimmed.end(), candidates.begin() + end,
                           candidates.end());
            if (oracle(trimmed, target)) {
                candidates = std::move(trimmed);
                removed = true;
            }
        }
        if (!removed) {
            // No group is removable (can happen with a noisy or
            // randomized-replacement oracle); give up with what we
            // have rather than loop forever.
            break;
        }
    }
    return candidates;
}

EvictionSet::Oracle
EvictionSet::modelOracle(const Cache &prototype, std::uint64_t seed)
{
    const CacheConfig cfg = prototype.config();
    return [cfg, seed](const std::vector<Addr> &candidates, Addr target) {
        // With random replacement a single trial is probabilistic;
        // majority-vote over several trials.
        unsigned evicted_votes = 0;
        constexpr unsigned kTrials = 9;
        for (unsigned trial = 0; trial < kTrials; ++trial) {
            Rng rng(seed + trial * 7919);
            Cache scratch(cfg, rng, seed);
            scratch.install(lineAlign(target), 0, false, kSeqNone);
            Cycle when = 1;
            for (const Addr addr : candidates)
                scratch.install(lineAlign(addr), when++, false, kSeqNone);
            if (!scratch.present(lineAlign(target), when))
                ++evicted_votes;
        }
        return evicted_votes * 2 > kTrials;
    };
}

} // namespace unxpec
