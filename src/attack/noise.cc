#include "attack/noise.hh"

#include "cpu/core.hh"

namespace unxpec {

NoiseProfile
NoiseProfile::quiet()
{
    return {};
}

NoiseProfile
NoiseProfile::evaluation()
{
    NoiseProfile profile;
    profile.interruptProbPerCycle = 3.0e-4;
    profile.interruptStallMin = 60;
    profile.interruptStallMax = 240;
    profile.dramJitterSigma = 9.0;
    return profile;
}

NoiseProfile
NoiseProfile::noisyHost()
{
    NoiseProfile profile;
    profile.interruptProbPerCycle = 8.0e-4;
    profile.interruptStallMin = 80;
    profile.interruptStallMax = 400;
    profile.dramJitterSigma = 14.0;
    return profile;
}

void
NoiseProfile::applyTo(Core &core) const
{
    core.setInterruptNoise(interruptProbPerCycle, interruptStallMin,
                           interruptStallMax);
}

void
NoiseProfile::applyTo(SystemConfig &cfg) const
{
    cfg.memory.jitterSigma = dramJitterSigma;
}

} // namespace unxpec
