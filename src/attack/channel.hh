/**
 * @file
 * Covert-channel calibration and decoding. The receiver classifies
 * each latency measurement against a threshold (paper §VI-A picks 178
 * without and 183 with eviction sets from the observed distributions).
 */

#ifndef UNXPEC_ATTACK_CHANNEL_HH
#define UNXPEC_ATTACK_CHANNEL_HH

#include <vector>

namespace unxpec {

/** Threshold-based one-bit decoder with calibration helpers. */
class CovertChannel
{
  public:
    /**
     * Choose the threshold minimizing empirical classification error
     * over labeled calibration samples.
     */
    static double calibrateThreshold(const std::vector<double> &zeros,
                                     const std::vector<double> &ones);

    /** Decode one sample: 1 when the latency exceeds the threshold. */
    static int decode(double latency, double threshold)
    {
        return latency > threshold ? 1 : 0;
    }

    /** Majority-vote decode over several samples of the same bit. */
    static int decodeMajority(const std::vector<double> &samples,
                              double threshold);

    /** Fraction of guesses matching the secret bits. */
    static double accuracy(const std::vector<int> &guesses,
                           const std::vector<int> &secret);
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_CHANNEL_HH
