#include "attack/adaptive.hh"

#include <algorithm>

namespace unxpec {

AdaptiveDecoder::AdaptiveDecoder(double initial_threshold,
                                 double expected_delta, double alpha)
    : mean0_(initial_threshold - expected_delta / 2.0),
      mean1_(initial_threshold + expected_delta / 2.0),
      alpha_(alpha)
{
}

int
AdaptiveDecoder::decode(double latency)
{
    const int guess = latency > threshold() ? 1 : 0;
    // Fold the observation into the matched cluster. Far outliers
    // (noise spikes) are clamped so one interrupt does not yank the
    // boundary.
    const double separation = std::max(1.0, mean1_ - mean0_);
    if (guess == 1) {
        const double clamped =
            std::min(latency, mean1_ + 2.0 * separation);
        mean1_ += alpha_ * (clamped - mean1_);
    } else {
        const double clamped =
            std::max(latency, mean0_ - 2.0 * separation);
        mean0_ += alpha_ * (clamped - mean0_);
    }
    // Keep the clusters ordered even under pathological inputs.
    if (mean1_ < mean0_ + 1.0)
        mean1_ = mean0_ + 1.0;
    return guess;
}

} // namespace unxpec
