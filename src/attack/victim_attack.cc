#include "attack/victim_attack.hh"

#include "sim/log.hh"

namespace unxpec {

namespace {

/** Deterministic known-plaintext schedule (any bytes work: with one
 *  table entry per line the first plaintext already pins the byte;
 *  extras cross-check it). */
constexpr std::array<std::uint8_t, 8> kPlaintexts = {
    0x00, 0xa5, 0x3c, 0x71, 0xe2, 0x17, 0x88, 0x4b,
};

} // namespace

VictimAttack::VictimAttack(Core &core, const VictimAttackConfig &cfg)
    : core_(core), cfg_(cfg), listing_(buildVictim(cfg.victim))
{
    if (cfg_.plaintexts == 0 || cfg_.plaintexts > kPlaintexts.size())
        fatal("VictimAttack: plaintexts must be in [1, ",
              kPlaintexts.size(), "]");
    if (cfg_.victim.kind == VictimKind::AesTtable) {
        oobIndex_ = listing_.symbol(kAesKeySym) -
                    listing_.symbol(kAesTrainKeySym);
    } else {
        oobIndex_ = listing_.symbol(kRsaExponentSym) -
                    listing_.symbol(kRsaTrainBitsSym);
    }
}

void
VictimAttack::setKey(const std::array<std::uint8_t, 16> &key)
{
    if (cfg_.victim.kind != VictimKind::AesTtable)
        fatal("VictimAttack::setKey: not an AES victim");
    const Addr base = listing_.symbol(kAesKeySym);
    for (unsigned i = 0; i < key.size(); ++i)
        core_.mem().write8(base + i, key[i]);
}

void
VictimAttack::setExponent(std::uint64_t exponent)
{
    if (cfg_.victim.kind != VictimKind::RsaSqMul)
        fatal("VictimAttack::setExponent: not an RSA victim");
    const Addr base = listing_.symbol(kRsaExponentSym);
    for (unsigned i = 0; i < kRsaExponentBits; ++i) {
        const unsigned bit = (exponent >> (kRsaExponentBits - 1 - i)) & 1;
        core_.mem().write8(base + i, bit);
    }
}

void
VictimAttack::runOnce()
{
    RunOptions options;
    options.loadData = !dataLoaded_;
    if (!dataLoaded_) {
        // Priming run, result discarded. The transient body is only
        // ever fetched through the final-trial mispredict redirect, so
        // its code lines are stone cold the first time through — the
        // fetch stall would push the burst (and the secret-dependent
        // load) outside the speculation window and poison the first
        // sample. Real attackers discard warm-up samples for the same
        // reason. The spent cycles still count toward the recovery
        // rate.
        //
        // The RSA burst is worse than cold: it only executes when the
        // read bit is 1, so a priming run over a leading 0 bit warms
        // nothing. Plant a 1 in the attacker's own training array and
        // point the priming round at it *in bounds* — the burst then
        // runs architecturally once — and restore the pokes after.
        std::vector<std::uint64_t> savedIdx;
        const bool rsa = cfg_.victim.kind == VictimKind::RsaSqMul;
        const Addr idxTab = listing_.symbol(kIdxTabSym);
        if (rsa) {
            const Addr train = listing_.symbol(kRsaTrainBitsSym);
            for (unsigned t = 0; t < listing_.trials; ++t) {
                savedIdx.push_back(core_.mem().read64(idxTab + 8 * t));
                core_.mem().write64(idxTab + 8 * t,
                                    t + 1 < listing_.trials ? 0 : 1);
            }
            core_.mem().write8(train + 1, 1);
        }
        const RunResult primer = core_.run(listing_.program, options);
        dataLoaded_ = true;
        options.loadData = false;
        ++totalRuns_;
        totalCycles_ += primer.cycles;
        if (rsa) {
            core_.mem().write8(listing_.symbol(kRsaTrainBitsSym) + 1, 0);
            for (unsigned t = 0; t < listing_.trials; ++t)
                core_.mem().write64(idxTab + 8 * t, savedIdx[t]);
        }
    }
    const RunResult result = core_.run(listing_.program, options);
    ++totalRuns_;
    totalCycles_ += result.cycles;
}

std::vector<double>
VictimAttack::runAesProbe(unsigned byte, std::uint8_t pt)
{
    const unsigned trials = listing_.trials;
    const Addr idxTab = listing_.symbol(kIdxTabSym);
    // Training rounds stay in bounds on the zero training key; the
    // final round reaches key[byte] out-of-bounds.
    for (unsigned t = 0; t + 1 < trials; ++t)
        core_.mem().write64(idxTab + 8 * t, byte);
    core_.mem().write64(idxTab + 8 * (trials - 1), oobIndex_ + byte);
    core_.mem().write8(listing_.symbol(kAesPlaintextSym), pt);
    const Addr tbase = listing_.symbol(kAesTableSym) +
                       (byte & 3) * aesTableBytes();
    core_.mem().write64(listing_.symbol(kAesTableBaseSym), tbase);
    // The line the training lookups warm: index 0 ^ pt.
    core_.mem().write64(listing_.symbol(kAesFlushSym),
                        tbase + static_cast<Addr>(pt) * kLineBytes);

    runOnce();

    const Addr probeOut = listing_.symbol(kAesProbeOutSym);
    std::vector<double> latencies;
    latencies.reserve(kAesTableEntries);
    for (unsigned e = 0; e < kAesTableEntries; ++e)
        latencies.push_back(
            static_cast<double>(core_.mem().read64(probeOut + 8 * e)));
    return latencies;
}

AesRecoveryResult
VictimAttack::recoverAesKey()
{
    if (cfg_.victim.kind != VictimKind::AesTtable)
        fatal("VictimAttack::recoverAesKey: not an AES victim");
    AesRecoveryResult result;
    for (unsigned b = 0; b < 16; ++b) {
        std::vector<ProbeEvidence> evidence;
        evidence.reserve(cfg_.plaintexts);
        for (unsigned p = 0; p < cfg_.plaintexts; ++p) {
            ProbeEvidence e;
            e.plaintext = kPlaintexts[p];
            e.entryLatencies = runAesProbe(b, e.plaintext);
            evidence.push_back(std::move(e));
        }
        const ByteRanking ranking =
            rankKeyByte(evidence, cfg_.minMarginCycles);
        result.guess[b] = ranking.best();
        result.margin[b] = ranking.margin;
        result.confident[b] = ranking.confident;
        result.confidentBytes += ranking.confident;
    }
    return result;
}

std::pair<double, double>
VictimAttack::runRsaBit(unsigned bit)
{
    const unsigned trials = listing_.trials;
    const Addr idxTab = listing_.symbol(kIdxTabSym);
    for (unsigned t = 0; t + 1 < trials; ++t)
        core_.mem().write64(idxTab + 8 * t, bit);
    core_.mem().write64(idxTab + 8 * (trials - 1), oobIndex_ + bit);

    runOnce();

    const double contention = static_cast<double>(
        core_.mem().read64(listing_.symbol(kRsaContentionOutSym)));
    const double reload = static_cast<double>(
        core_.mem().read64(listing_.symbol(kRsaProbeOutSym)));
    return {contention, reload};
}

RsaRecoveryResult
VictimAttack::recoverExponent(bool contention_receiver)
{
    if (cfg_.victim.kind != VictimKind::RsaSqMul)
        fatal("VictimAttack::recoverExponent: not an RSA victim");
    RsaRecoveryResult result;
    result.stats.reserve(kRsaExponentBits);
    for (unsigned b = 0; b < kRsaExponentBits; ++b) {
        const auto [contention, reload] = runRsaBit(b);
        result.stats.push_back(contention_receiver ? contention
                                                   : reload);
    }
    // A 1 bit delays the contention probe (burst occupies the
    // multiplier) but speeds the reload (transient install persists).
    const BitSplit split = splitBits(result.stats, contention_receiver,
                                     cfg_.minGapCycles);
    result.gap = split.gap;
    result.confident = split.confident;
    for (unsigned b = 0; b < kRsaExponentBits; ++b) {
        result.guess = (result.guess << 1) |
                       static_cast<std::uint64_t>(split.bits[b]);
    }
    return result;
}

std::vector<std::uint8_t>
VictimAttack::plaintextSchedule() const
{
    return std::vector<std::uint8_t>(
        kPlaintexts.begin(), kPlaintexts.begin() + cfg_.plaintexts);
}

double
VictimAttack::cyclesPerSample() const
{
    return totalRuns_ == 0
        ? 0.0
        : static_cast<double>(totalCycles_) / totalRuns_;
}

void
VictimAttack::resetTrialState()
{
    dataLoaded_ = false;
    totalRuns_ = 0;
    totalCycles_ = 0;
}

} // namespace unxpec
