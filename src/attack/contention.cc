#include "attack/contention.hh"

#include "sim/log.hh"

namespace unxpec {

namespace {

// Register allocation for the attack program.
constexpr RegIndex rIdx = 1;      // index for the current trial
constexpr RegIndex rBound = 2;    // warm chase / bound value
constexpr RegIndex rSecret = 3;   // transiently loaded secret
constexpr RegIndex rA = 5;        // A base
constexpr RegIndex rIdxTab = 6;   // index-table base
constexpr RegIndex rLatTab = 7;   // latency-result base
constexpr RegIndex rTmp0 = 8;
constexpr RegIndex rTmp1 = 9;
constexpr RegIndex rTmp2 = 10;
constexpr RegIndex rZero = 11;    // constant 0 (inner compare)
constexpr RegIndex rMulA = 12;    // burst operands (always ready)
constexpr RegIndex rMulB = 13;
constexpr RegIndex rSink = 14;    // burst destination (dead value)
constexpr RegIndex rDelta = 15;   // measured latency
constexpr RegIndex rProbe = 16;   // dependent probe chain
constexpr RegIndex rTrial = 17;   // trial counter
constexpr RegIndex rTrials = 18;  // trial count
constexpr RegIndex rChain = 19;   // chase base
constexpr RegIndex rT0 = 24;      // first timestamp
constexpr RegIndex rT1 = 25;      // second timestamp

} // namespace

ContentionAttack::ContentionAttack(Core &core, const ContentionConfig &cfg)
    : core_(core), cfg_(cfg)
{
    if (cfg_.transientMuls == 0)
        fatal("ContentionAttack: need at least one transient multiply");
    if (cfg_.probeMuls == 0)
        fatal("ContentionAttack: need at least one probe multiply");
    if (cfg_.conditionAccesses == 0)
        fatal("ContentionAttack: the bound chase needs an access");
    trials_ = cfg_.mistrainIterations + 1;
    buildProgram();
}

void
ContentionAttack::buildProgram()
{
    const unsigned c = cfg_.conditionAccesses;
    ProgramBuilder b;

    // ---- data segment ------------------------------------------------
    aBase_ = b.alloc(kLineBytes);
    secretAddr_ = b.alloc(kLineBytes);
    chainBase_ = b.alloc(kLineBytes * c);
    idxBase_ = b.alloc(8 * trials_);
    latBase_ = b.alloc(8 * trials_);

    // A[0] = 0: training rounds take the inner secret==0 early-out.
    b.initByte(aBase_, 0);
    const std::uint64_t oob_index = secretAddr_ - aBase_;
    // Warm chase; the last element holds the bound (1) so the trained
    // in-bounds index 0 satisfies index < bound.
    for (unsigned j = 0; j + 1 < c; ++j)
        b.initWord64(chainBase_ + j * kLineBytes,
                     chainBase_ + (j + 1) * kLineBytes);
    b.initWord64(chainBase_ + (c - 1) * kLineBytes, 1);
    for (unsigned t = 0; t + 1 < trials_; ++t)
        b.initWord64(idxBase_ + 8 * t, 0);
    b.initWord64(idxBase_ + 8 * (trials_ - 1), oob_index);

    // ---- code ----------------------------------------------------------
    b.li(rA, static_cast<std::int64_t>(aBase_));
    b.li(rIdxTab, static_cast<std::int64_t>(idxBase_));
    b.li(rLatTab, static_cast<std::int64_t>(latBase_));
    b.li(rChain, static_cast<std::int64_t>(chainBase_));
    b.li(rZero, 0);
    b.li(rMulA, 3);
    b.li(rMulB, 5);
    b.li(rTrial, 0);
    b.li(rTrials, trials_);

    // Warm everything the measured round touches: the secret line, the
    // chase, and A. Every later load hits — the channel is cache-free.
    b.li(rTmp0, static_cast<std::int64_t>(secretAddr_));
    b.load(rTmp1, rTmp0, 0, 1);
    b.mov(rTmp0, rChain);
    for (unsigned j = 0; j < c; ++j)
        b.load(rTmp0, rTmp0);
    b.load(rTmp1, rA, 0, 1);

    const int loop_top = b.label();
    const int skip = b.label();
    b.bind(loop_top);

    // index = idxTable[trial]
    b.shl(rTmp0, rTrial, 3);
    b.add(rTmp0, rTmp0, rIdxTab);
    b.load(rIdx, rTmp0);

    b.fence();

    // Outer branch condition: warm pointer chase plus a dependent ALU
    // padding chain. Resolution takes ~conditionPadding cycles — long
    // enough for the inner redirect and the burst, independent of any
    // cache state.
    b.mov(rBound, rChain);
    for (unsigned j = 0; j < c; ++j)
        b.load(rBound, rBound);
    for (unsigned p = 0; p < cfg_.conditionPadding; ++p)
        b.addi(rBound, rBound, 0);

    // if (index < bound) { sender } — trained not-taken.
    b.bge(rIdx, rBound, skip);

    // Sender: secret = A[index] (an L1 hit either way); secret==0
    // takes the trained early-out, secret==1 mispredicts it and the
    // redirect falls into the multiply burst.
    b.add(rTmp2, rA, rIdx);
    b.load(rSecret, rTmp2, 0, 1);
    b.beq(rSecret, rZero, skip);
    for (unsigned m = 0; m < cfg_.transientMuls; ++m)
        b.mul(rSink, rMulA, rMulB);

    b.bind(skip);
    // Receiver: probe multiplies chained off t0 so none of them can
    // issue transiently (rdtscp is serializing and only executes on
    // the correct path).
    b.rdtscp(rT0);
    b.mov(rProbe, rT0);
    for (unsigned m = 0; m < cfg_.probeMuls; ++m)
        b.mul(rProbe, rProbe, rMulB);
    b.rdtscp(rT1);
    b.sub(rDelta, rT1, rT0);

    b.shl(rTmp0, rTrial, 3);
    b.add(rTmp0, rTmp0, rLatTab);
    b.store(rTmp0, 0, rDelta);

    b.addi(rTrial, rTrial, 1);
    b.blt(rTrial, rTrials, loop_top);
    b.halt();

    program_ = b.build();
    dataLoaded_ = false;
}

void
ContentionAttack::setSecret(int bit)
{
    core_.mem().write8(secretAddr_, bit ? 1 : 0);
}

double
ContentionAttack::measureOnce()
{
    RunOptions options;
    options.loadData = !dataLoaded_;
    const RunResult result = core_.run(program_, options);
    dataLoaded_ = true;

    ++totalRuns_;
    totalCycles_ += result.cycles;

    const unsigned final_trial = trials_ - 1;
    return static_cast<double>(
        core_.mem().read64(latBase_ + 8 * final_trial));
}

std::vector<double>
ContentionAttack::collect(int secret, unsigned samples)
{
    setSecret(secret);
    std::vector<double> measurements;
    measurements.reserve(samples);
    for (unsigned i = 0; i < samples; ++i)
        measurements.push_back(measureOnce());
    return measurements;
}

double
ContentionAttack::cyclesPerSample() const
{
    return totalRuns_ == 0
        ? 0.0
        : static_cast<double>(totalCycles_) / totalRuns_;
}

void
ContentionAttack::resetTrialState()
{
    dataLoaded_ = false;
    totalRuns_ = 0;
    totalCycles_ = 0;
}

} // namespace unxpec
