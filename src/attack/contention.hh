/**
 * @file
 * SpectreRewind-style functional-unit contention receiver (Fustos et
 * al., 2020): a transient sender that issues a burst of multiplies on a
 * *non-pipelined* multiplier (CoreConfig::mulPipelined = false). The FU
 * busy window is physical — it survives the squash — so a receiver on
 * the correct path times a short dependent multiply chain right after
 * the squash and observes the leftover contention.
 *
 * Unlike unXpec this channel never touches the cache: the transient
 * body is pure ALU work and every load in the program hits. Defenses
 * that hide or roll back speculative *cache* state — SafeSpec, SpecBox,
 * InvisiSpec, CleanupSpec, CacheSquash, delay-on-miss — are blind to
 * it, which is exactly the point the attack x defense matrix makes:
 * closing the cache-state channel does not close speculation's timing
 * side effects in general.
 *
 * Program structure (one run = mistrainIterations in-bounds rounds plus
 * one measured out-of-bounds round):
 *
 *   outer   if (index < bound) ...     trained not-taken-to-skip; the
 *           bound is a warm pointer chase plus a dependent ALU padding
 *           chain, so resolution takes ~conditionPadding cycles and
 *           covers the transient body (all of it cache-warm);
 *   inner   if (secret == 0) goto skip trained taken (training secret
 *           A[0] = 0). secret=1 mispredicts transiently: the redirect
 *           falls into `transientMuls` independent multiplies that
 *           saturate the non-pipelined FU;
 *   skip    t0 = rdtscp; `probeMuls` multiplies dependent on t0 (so
 *           they can never issue transiently); t1 = rdtscp.
 *
 * secret=0: no transient multiplies, t1-t0 is the bare probe chain.
 * secret=1: the probe queues behind the squashed burst's busy window.
 * With a pipelined multiplier (the default core) the busy window never
 * forms and the channel vanishes — the negative control.
 */

#ifndef UNXPEC_ATTACK_CONTENTION_HH
#define UNXPEC_ATTACK_CONTENTION_HH

#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace unxpec {

/** Contention-receiver parameters. */
struct ContentionConfig
{
    /** Transient multiply burst saturating the non-pipelined FU. */
    unsigned transientMuls = 24;
    /** Dependent multiplies in the receiver's probe chain. */
    unsigned probeMuls = 4;
    /** Warm pointer-chase accesses in the outer branch condition. */
    unsigned conditionAccesses = 1;
    /**
     * Dependent ALU padding after the chase: sets the outer branch's
     * resolution time, i.e. how long the transient window stays open
     * for the burst to issue. Cache-independent by construction.
     */
    unsigned conditionPadding = 48;
    /** In-bounds trainings before the out-of-bounds round. */
    unsigned mistrainIterations = 16;
};

/** Field-wise equality (CorePool attack-cache validity check). */
inline bool
operator==(const ContentionConfig &a, const ContentionConfig &b)
{
    return a.transientMuls == b.transientMuls &&
           a.probeMuls == b.probeMuls &&
           a.conditionAccesses == b.conditionAccesses &&
           a.conditionPadding == b.conditionPadding &&
           a.mistrainIterations == b.mistrainIterations;
}

inline bool
operator!=(const ContentionConfig &a, const ContentionConfig &b)
{
    return !(a == b);
}

/** Orchestrates contention rounds on a core. */
class ContentionAttack
{
  public:
    /**
     * The core should be configured with mulPipelined = false for the
     * channel to exist; a pipelined core is accepted (it is the
     * negative control) and simply measures nothing.
     */
    ContentionAttack(Core &core, const ContentionConfig &cfg = {});

    /** Write the one-bit secret the sender will transmit. */
    void setSecret(int bit);

    /** One program run (training + one measured round). @return the
     *  receiver-observed probe latency t1 - t0. */
    double measureOnce();

    /** Collect `samples` measurements for a fixed secret. */
    std::vector<double> collect(int secret, unsigned samples);

    /** Mean simulated cycles consumed per measurement (sample). */
    double cyclesPerSample() const;

    /** Restore freshly-constructed per-trial state (CorePool attack
     *  cache; see UnxpecAttack::resetTrialState). */
    void resetTrialState();

    const ContentionConfig &config() const { return cfg_; }
    const Program &program() const { return program_; }
    Core &core() { return core_; }

  private:
    void buildProgram();

    Core &core_;
    ContentionConfig cfg_;
    Program program_;

    // Data-segment layout.
    Addr aBase_ = 0;
    Addr secretAddr_ = 0;
    Addr chainBase_ = 0;
    Addr idxBase_ = 0;
    Addr latBase_ = 0;
    unsigned trials_ = 0;

    bool dataLoaded_ = false;
    std::uint64_t totalRuns_ = 0;
    std::uint64_t totalCycles_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_CONTENTION_HH
