#include "attack/cross_core.hh"

#include "analysis/roc.hh"
#include "attack/channel.hh"
#include "sim/log.hh"

namespace unxpec {

namespace {

// Register allocation, shared by the sender and receiver programs.
constexpr RegIndex rIdx = 1;      // index for the current trial
constexpr RegIndex rBound = 2;    // f(N) chain / bound value
constexpr RegIndex rSecret = 3;   // transiently loaded secret
constexpr RegIndex rP = 4;        // P base
constexpr RegIndex rA = 5;        // A base
constexpr RegIndex rIdxTab = 6;   // index-table base
constexpr RegIndex rLatTab = 7;   // receiver latency-result base
constexpr RegIndex rTmp0 = 8;
constexpr RegIndex rTmp1 = 9;
constexpr RegIndex rTmp2 = 10;
constexpr RegIndex rScaled = 11;  // secret * 64
constexpr RegIndex rPtr = 13;     // walking pointer over P
constexpr RegIndex rTmp4 = 14;
constexpr RegIndex rDelta = 15;   // measured latency
constexpr RegIndex rTrial = 17;   // trial counter
constexpr RegIndex rTrials = 18;  // trial count
constexpr RegIndex rChain = 19;   // f(N) chain base
constexpr RegIndex rT0Tab = 20;   // receiver t0-result base
constexpr RegIndex rT0 = 24;      // first timestamp
constexpr RegIndex rT1 = 25;      // second timestamp

/**
 * Map raw probe latencies into the decoder's score domain. The
 * harness-wide convention (CovertChannel, RocCurve) is "secret=1
 * samples score higher"; in this channel secret=1 is the FAST class,
 * so analysis runs on negated latencies.
 */
std::vector<double>
negated(std::vector<double> v)
{
    for (double &x : v)
        x = -x;
    return v;
}

} // namespace

CrossCoreAttack::CrossCoreAttack(Machine &machine, const UnxpecConfig &cfg)
    : machine_(machine), cfg_(cfg)
{
    if (machine_.numCores() < 2)
        fatal("CrossCoreAttack: need a machine with at least 2 cores");
    if (cfg_.inBranchLoads == 0)
        fatal("CrossCoreAttack: need at least one in-branch load");
    if (cfg_.conditionAccesses == 0)
        fatal("CrossCoreAttack: f(N) needs at least one access");
    trials_ = cfg_.mistrainIterations + 1;
    buildPrograms();
}

void
CrossCoreAttack::buildPrograms()
{
    const unsigned n = cfg_.inBranchLoads;
    const unsigned c = cfg_.conditionAccesses;

    // ---- sender (core 0): POISON + one out-of-bounds round ----------
    ProgramBuilder b;

    pBase_ = b.alloc(kLineBytes * (n + 1));
    aBase_ = b.alloc(kLineBytes);
    secretAddr_ = b.alloc(kLineBytes);
    chainBase_ = b.alloc(kLineBytes * c);
    idxBase_ = b.alloc(8 * trials_);
    rxLatBase_ = b.alloc(8);
    rxT0Base_ = b.alloc(8);

    // A[0] = 0: training rounds transmit "secret 0" (loads hit P[0]).
    b.initByte(aBase_, 0);
    const std::uint64_t oob_index = secretAddr_ - aBase_;
    for (unsigned j = 0; j + 1 < c; ++j)
        b.initWord64(chainBase_ + j * kLineBytes,
                     chainBase_ + (j + 1) * kLineBytes);
    b.initWord64(chainBase_ + (c - 1) * kLineBytes, 1);
    for (unsigned t = 0; t + 1 < trials_; ++t)
        b.initWord64(idxBase_ + 8 * t, 0);
    b.initWord64(idxBase_ + 8 * (trials_ - 1), oob_index);

    b.li(rP, static_cast<std::int64_t>(pBase_));
    b.li(rA, static_cast<std::int64_t>(aBase_));
    b.li(rIdxTab, static_cast<std::int64_t>(idxBase_));
    b.li(rChain, static_cast<std::int64_t>(chainBase_));
    b.li(rTrial, 0);
    b.li(rTrials, trials_);

    // Sender-side warmup: the victim touches its own secret, so the
    // transient secret load hits and the dependent loads issue early.
    b.li(rTmp0, static_cast<std::int64_t>(secretAddr_));
    b.load(rTmp1, rTmp0, 0, 1);
    // Bring P[0] in once.
    b.load(rTmp1, rP);

    const int loop_top = b.label();
    const int skip = b.label();
    b.bind(loop_top);

    // index = idxTable[trial]
    b.shl(rTmp0, rTrial, 3);
    b.add(rTmp0, rTmp0, rIdxTab);
    b.load(rIdx, rTmp0);

    // Flush the f(N) chain and P[64*1..64*n]. clflush is machine-wide
    // (MemoryHierarchy::flushLine -> CoherenceEngine::flushAll), so
    // this also evicts the receiver's copies from earlier rounds.
    for (unsigned j = 0; j < c; ++j)
        b.clflush(rChain, static_cast<std::int64_t>(j) * kLineBytes);
    for (unsigned k = 1; k <= n; ++k)
        b.clflush(rP, static_cast<std::int64_t>(k) * kLineBytes);
    // (Re-)load P[0]: secret 0 must produce all-hits.
    b.load(rTmp1, rP);
    b.fence();

    // Branch condition: pointer-chase f(N) plus dependent padding so
    // resolution covers the transient loads' fills.
    b.mov(rBound, rChain);
    for (unsigned j = 0; j < c; ++j)
        b.load(rBound, rBound);
    for (unsigned p = 0; p < cfg_.conditionPadding; ++p)
        b.addi(rBound, rBound, 0);

    // if (index < bound) { transient body } — trained not-taken.
    b.bge(rIdx, rBound, skip);

    // Transient body: secret = A[index]; load P[secret*64*k].
    b.add(rTmp2, rA, rIdx);
    b.load(rSecret, rTmp2, 0, 1);
    b.shl(rScaled, rSecret, 6);
    b.mov(rPtr, rP);
    for (unsigned k = 1; k <= n; ++k) {
        b.add(rPtr, rPtr, rScaled);
        b.load(rTmp4, rPtr);
    }

    b.bind(skip);
    b.addi(rTrial, rTrial, 1);
    b.blt(rTrial, rTrials, loop_top);
    b.halt();

    sender_ = b.build();

    // ---- receiver (core 1): timed probe of P[64] --------------------
    // No allocations and no data images: every address was placed by
    // the sender's builder in the shared memory.
    ProgramBuilder r;
    r.li(rP, static_cast<std::int64_t>(pBase_));
    r.li(rLatTab, static_cast<std::int64_t>(rxLatBase_));
    r.li(rT0Tab, static_cast<std::int64_t>(rxT0Base_));
    r.fence();
    r.rdtscp(rT0);
    r.load(rTmp4, rP, kLineBytes); // probe P[64]
    r.rdtscp(rT1);                 // waits for the probe to complete
    r.sub(rDelta, rT1, rT0);
    r.store(rLatTab, 0, rDelta);
    r.store(rT0Tab, 0, rT0);
    r.halt();
    receiver_ = r.build();

    dataLoaded_ = false;
}

void
CrossCoreAttack::setSecret(int bit)
{
    machine_.core(0).mem().write8(secretAddr_, bit ? 1 : 0);
}

double
CrossCoreAttack::measureOnce()
{
    RunOptions sender_opts;
    sender_opts.loadData = !dataLoaded_;
    const RunResult sent = machine_.runOn(0, sender_, sender_opts);
    dataLoaded_ = true;

    RunOptions receiver_opts;
    receiver_opts.loadData = false;
    const RunResult probed = machine_.runOn(1, receiver_, receiver_opts);

    ++totalRuns_;
    totalCycles_ += sent.cycles + probed.cycles;

    return static_cast<double>(
        machine_.core(0).mem().read64(rxLatBase_));
}

std::vector<double>
CrossCoreAttack::collect(int secret, unsigned samples)
{
    setSecret(secret);
    std::vector<double> measurements;
    measurements.reserve(samples);
    for (unsigned i = 0; i < samples; ++i)
        measurements.push_back(measureOnce());
    return measurements;
}

double
CrossCoreAttack::calibrate(unsigned samples_per_secret)
{
    const auto zeros = collect(0, samples_per_secret);
    const auto ones = collect(1, samples_per_secret);
    return CovertChannel::calibrateThreshold(negated(zeros), negated(ones));
}

double
CrossCoreAttack::aucScore(unsigned samples_per_secret)
{
    const auto zeros = collect(0, samples_per_secret);
    const auto ones = collect(1, samples_per_secret);
    return RocCurve::of(negated(zeros), negated(ones)).auc();
}

LeakResult
CrossCoreAttack::leak(const std::vector<int> &secret_bits,
                      double threshold)
{
    LeakResult result;
    result.guesses.reserve(secret_bits.size());
    result.latencies.reserve(secret_bits.size());
    for (const int bit : secret_bits) {
        setSecret(bit);
        const double latency = measureOnce();
        result.latencies.push_back(latency);
        result.guesses.push_back(CovertChannel::decode(-latency, threshold));
    }
    result.accuracy = CovertChannel::accuracy(result.guesses, secret_bits);
    return result;
}

double
CrossCoreAttack::cyclesPerSample() const
{
    return totalRuns_ == 0
        ? 0.0
        : static_cast<double>(totalCycles_) / totalRuns_;
}

} // namespace unxpec
