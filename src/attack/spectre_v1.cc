#include "attack/spectre_v1.hh"

#include <algorithm>

#include "sim/log.hh"

namespace unxpec {

namespace {

constexpr RegIndex rIdx = 1;
constexpr RegIndex rBound = 2;
constexpr RegIndex rSecret = 3;
constexpr RegIndex rProbe = 4;
constexpr RegIndex rArray = 5;
constexpr RegIndex rIdxTab = 6;
constexpr RegIndex rResTab = 7;
constexpr RegIndex rTmp0 = 8;
constexpr RegIndex rTmp1 = 9;
constexpr RegIndex rTmp2 = 10;
constexpr RegIndex rScaled = 11;
constexpr RegIndex rTmp3 = 12;
constexpr RegIndex rTrial = 17;
constexpr RegIndex rTrials = 18;
constexpr RegIndex rBoundAddr = 19;
constexpr RegIndex rJ = 20;
constexpr RegIndex rJMax = 21;
constexpr RegIndex rZero = 22;
constexpr RegIndex rT0 = 24;
constexpr RegIndex rT1 = 25;
constexpr RegIndex rDelta = 26;

} // namespace

SpectreV1::SpectreV1(Core &core, const SpectreConfig &cfg)
    : core_(core), cfg_(cfg)
{
    trials_ = cfg_.mistrainIterations + 1;
    buildProgram();
}

void
SpectreV1::buildProgram()
{
    ProgramBuilder b;

    probeBase_ = b.alloc(kLineBytes * cfg_.probeEntries);
    arrayBase_ = b.alloc(kLineBytes);
    secretAddr_ = b.alloc(kLineBytes);
    idxBase_ = b.alloc(8 * trials_);
    resultBase_ = b.alloc(8 * cfg_.probeEntries);
    const Addr bound_addr = b.alloc(kLineBytes);

    b.initByte(arrayBase_, 0);  // A[0] = 0: training transmits byte 0
    b.initWord64(bound_addr, 1);
    const std::uint64_t oob_index = secretAddr_ - arrayBase_;
    for (unsigned t = 0; t + 1 < trials_; ++t)
        b.initWord64(idxBase_ + 8 * t, 0);
    b.initWord64(idxBase_ + 8 * (trials_ - 1), oob_index);

    // ---- code ---------------------------------------------------------
    b.li(rProbe, static_cast<std::int64_t>(probeBase_));
    b.li(rArray, static_cast<std::int64_t>(arrayBase_));
    b.li(rIdxTab, static_cast<std::int64_t>(idxBase_));
    b.li(rResTab, static_cast<std::int64_t>(resultBase_));
    b.li(rBoundAddr, static_cast<std::int64_t>(bound_addr));
    b.li(rTrial, 0);
    b.li(rTrials, trials_);
    b.li(rZero, 0);

    // Victim warms its own secret.
    b.li(rTmp0, static_cast<std::int64_t>(secretAddr_));
    b.load(rTmp1, rTmp0, 0, 1);

    // FLUSH: evict the whole probe array (line 19 of Algorithm 1).
    for (unsigned j = 0; j < cfg_.probeEntries; ++j)
        b.clflush(rProbe, static_cast<std::int64_t>(j) * kLineBytes);

    // ---- POISON + VICTIM loop ------------------------------------------
    const int loop_top = b.label();
    const int skip = b.label();
    b.bind(loop_top);

    b.shl(rTmp0, rTrial, 3);
    b.add(rTmp0, rTmp0, rIdxTab);
    b.load(rIdx, rTmp0);

    // Flush the bound so the branch resolves slowly in the final round.
    b.clflush(rBoundAddr, 0);
    b.fence();

    b.load(rBound, rBoundAddr);
    // Dependent padding: give the transient loads room to finish.
    for (unsigned p = 0; p < 30; ++p)
        b.addi(rBound, rBound, 0);
    b.bge(rIdx, rBound, skip);

    // Transient: y = P[64 * A[index]].
    b.add(rTmp2, rArray, rIdx);
    b.load(rSecret, rTmp2, 0, 1);
    b.shl(rScaled, rSecret, 6);
    b.add(rTmp3, rProbe, rScaled);
    b.load(rTmp1, rTmp3);

    b.bind(skip);
    b.addi(rTrial, rTrial, 1);
    b.blt(rTrial, rTrials, loop_top);

    // ---- PROBE: Flush+Reload timing over every entry --------------------
    b.li(rJ, 0);
    b.li(rJMax, cfg_.probeEntries);
    const int probe_top = b.label();
    b.bind(probe_top);

    b.rdtscp(rT0);
    // Make the probe load data-dependent on t0 so it cannot hoist
    // above the timestamp.
    b.and_(rTmp0, rT0, rZero);
    b.shl(rTmp1, rJ, 6);
    b.add(rTmp1, rTmp1, rTmp0);
    b.add(rTmp1, rTmp1, rProbe);
    b.load(rTmp2, rTmp1);
    b.rdtscp(rT1);
    b.sub(rDelta, rT1, rT0);

    b.shl(rTmp3, rJ, 3);
    b.add(rTmp3, rTmp3, rResTab);
    b.store(rTmp3, 0, rDelta);

    b.addi(rJ, rJ, 1);
    b.blt(rJ, rJMax, probe_top);
    b.halt();

    program_ = b.build();
    dataLoaded_ = false;
}

void
SpectreV1::setSecretByte(std::uint8_t value)
{
    core_.mem().write8(secretAddr_, value);
}

SpectreResult
SpectreV1::leakByte()
{
    RunOptions options;
    options.loadData = !dataLoaded_;
    core_.run(program_, options);
    dataLoaded_ = true;

    SpectreResult result;
    result.probeLatencies.reserve(cfg_.probeEntries);
    for (unsigned j = 0; j < cfg_.probeEntries; ++j) {
        result.probeLatencies.push_back(static_cast<double>(
            core_.mem().read64(resultBase_ + 8 * j)));
    }

    // Entry 0 is polluted by training; scan 1..N-1 for the hit.
    double best = 1e300;
    for (unsigned j = 1; j < cfg_.probeEntries; ++j) {
        if (result.probeLatencies[j] < best) {
            best = result.probeLatencies[j];
            result.guessedByte = static_cast<int>(j);
        }
    }
    result.guessLatency = best;
    // An L1/L2 hit is far below a memory access.
    const double hit_threshold =
        core_.config().memory.accessLatency * 0.5;
    result.cacheHitSignal = best < hit_threshold;
    return result;
}

} // namespace unxpec
