/**
 * @file
 * Classic Spectre variant 1 with a Flush+Reload probe (paper
 * Algorithm 1). Included as the contrast baseline: it leaks a byte per
 * round on the unsafe baseline, while CleanupSpec's rollback
 * invalidates the transient probe-array install and defeats it —
 * which is exactly why unXpec attacks the rollback itself instead.
 */

#ifndef UNXPEC_ATTACK_SPECTRE_V1_HH
#define UNXPEC_ATTACK_SPECTRE_V1_HH

#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace unxpec {

/** Parameters of the Spectre-v1 proof of concept. */
struct SpectreConfig
{
    unsigned mistrainIterations = 6;
    unsigned probeEntries = 256; //!< P[64 x 256] of Algorithm 1
};

/** One leaked byte plus the probe evidence. */
struct SpectreResult
{
    std::vector<double> probeLatencies; //!< per probe entry
    int guessedByte = -1;               //!< argmin over entries 1..255
    double guessLatency = 0.0;
    bool cacheHitSignal = false;        //!< guess looked like an L1/L2 hit
};

/** Spectre v1 attack + Flush+Reload receiver on the simulated core. */
class SpectreV1
{
  public:
    SpectreV1(Core &core, const SpectreConfig &cfg = {});

    /** Set the victim's secret byte (1..255; 0 is the training value). */
    void setSecretByte(std::uint8_t value);

    /** Run one full attack (poison, flush, victim, probe). */
    SpectreResult leakByte();

    const Program &program() const { return program_; }

  private:
    void buildProgram();

    Core &core_;
    SpectreConfig cfg_;
    Program program_;

    Addr probeBase_ = 0;
    Addr arrayBase_ = 0;
    Addr idxBase_ = 0;
    Addr resultBase_ = 0;
    Addr secretAddr_ = 0;
    unsigned trials_ = 0;
    bool dataLoaded_ = false;
};

} // namespace unxpec

#endif // UNXPEC_ATTACK_SPECTRE_V1_HH
