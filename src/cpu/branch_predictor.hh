/**
 * @file
 * Direction predictors. The attack mistrains a branch by executing it
 * repeatedly with in-bounds operands (Algorithm 1/2 POISON), so the
 * predictor must saturate toward the trained direction and keep
 * predicting it for the out-of-bounds round. A bimodal 2-bit table is
 * the default; gshare is provided as an alternative.
 */

#ifndef UNXPEC_CPU_BRANCH_PREDICTOR_HH
#define UNXPEC_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace unxpec {

/** Abstract taken/not-taken direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at `pc`. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Forget everything (fresh predictor). */
    virtual void reset() = 0;
};

/** Per-PC 2-bit saturating counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned table_bits = 12);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    unsigned index(std::uint64_t pc) const;

    unsigned tableBits_;
    std::vector<std::uint8_t> counters_;
};

/** gshare: global history XOR pc indexes the counter table. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(unsigned table_bits = 12,
                             unsigned history_bits = 8);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    unsigned index(std::uint64_t pc) const;

    unsigned tableBits_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> counters_;
};

} // namespace unxpec

#endif // UNXPEC_CPU_BRANCH_PREDICTOR_HH
