#include "cpu/isa.hh"

#include <sstream>

namespace unxpec {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP:     return "nop";
      case Opcode::HALT:    return "halt";
      case Opcode::LI:      return "li";
      case Opcode::MOV:     return "mov";
      case Opcode::ADD:     return "add";
      case Opcode::ADDI:    return "addi";
      case Opcode::SUB:     return "sub";
      case Opcode::MUL:     return "mul";
      case Opcode::AND:     return "and";
      case Opcode::OR:      return "or";
      case Opcode::XOR:     return "xor";
      case Opcode::SHL:     return "shl";
      case Opcode::SHR:     return "shr";
      case Opcode::LOAD:    return "load";
      case Opcode::STORE:   return "store";
      case Opcode::BLT:     return "blt";
      case Opcode::BGE:     return "bge";
      case Opcode::BEQ:     return "beq";
      case Opcode::BNE:     return "bne";
      case Opcode::JMP:     return "jmp";
      case Opcode::CLFLUSH: return "clflush";
      case Opcode::FENCE:   return "fence";
      case Opcode::RDTSCP:  return "rdtscp";
    }
    return "?";
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream oss;
    oss << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::LI:
        oss << " r" << +inst.rd << ", " << inst.imm;
        break;
      case Opcode::MOV:
        oss << " r" << +inst.rd << ", r" << +inst.rs1;
        break;
      case Opcode::ADDI:
      case Opcode::SHL:
      case Opcode::SHR:
        oss << " r" << +inst.rd << ", r" << +inst.rs1 << ", " << inst.imm;
        break;
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
        oss << " r" << +inst.rd << ", r" << +inst.rs1 << ", r" << +inst.rs2;
        break;
      case Opcode::LOAD:
        oss << +inst.size << " r" << +inst.rd << ", [r" << +inst.rs1
            << (inst.imm >= 0 ? "+" : "") << inst.imm << "]";
        break;
      case Opcode::STORE:
        oss << +inst.size << " [r" << +inst.rs1
            << (inst.imm >= 0 ? "+" : "") << inst.imm << "], r" << +inst.rs2;
        break;
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BEQ:
      case Opcode::BNE:
        oss << " r" << +inst.rs1 << ", r" << +inst.rs2 << ", @"
            << inst.target;
        break;
      case Opcode::JMP:
        oss << " @" << inst.target;
        break;
      case Opcode::CLFLUSH:
        oss << " [r" << +inst.rs1 << (inst.imm >= 0 ? "+" : "") << inst.imm
            << "]";
        break;
      case Opcode::RDTSCP:
        oss << " r" << +inst.rd;
        break;
      default:
        break;
    }
    return oss.str();
}

} // namespace unxpec
