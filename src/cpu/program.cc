#include "cpu/program.hh"

#include <sstream>

#include "memory/main_memory.hh"
#include "sim/log.hh"

namespace unxpec {

void
Program::loadInitialData(MainMemory &mem) const
{
    for (const auto &init : inits_) {
        for (std::size_t i = 0; i < init.bytes.size(); ++i)
            mem.write8(init.addr + i, init.bytes[i]);
    }
}

std::string
Program::listing() const
{
    std::ostringstream oss;
    for (std::size_t pc = 0; pc < code_.size(); ++pc)
        oss << pc << ":\t" << disassemble(code_[pc]) << "\n";
    return oss.str();
}

ProgramBuilder::ProgramBuilder()
    : dataBreak_(0x10000000)
{
}

Addr
ProgramBuilder::alloc(std::size_t bytes, std::size_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("ProgramBuilder::alloc: alignment must be a power of two");
    dataBreak_ = (dataBreak_ + align - 1) & ~static_cast<Addr>(align - 1);
    const Addr addr = dataBreak_;
    dataBreak_ += bytes;
    return addr;
}

void
ProgramBuilder::initBytes(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    inits_.push_back({addr, bytes});
}

void
ProgramBuilder::initByte(Addr addr, std::uint8_t value)
{
    inits_.push_back({addr, {value}});
}

void
ProgramBuilder::initWord64(Addr addr, std::uint64_t value)
{
    std::vector<std::uint8_t> bytes(8);
    for (unsigned i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    inits_.push_back({addr, std::move(bytes)});
}

int
ProgramBuilder::label()
{
    labelTargets_.push_back(-1);
    return static_cast<int>(labelTargets_.size()) - 1;
}

void
ProgramBuilder::bind(int label_id)
{
    if (label_id < 0 || label_id >= static_cast<int>(labelTargets_.size()))
        fatal("ProgramBuilder::bind: unknown label");
    labelTargets_[label_id] = static_cast<std::int32_t>(code_.size());
}

void
ProgramBuilder::emit(Instruction inst, int label_id)
{
    code_.push_back(inst);
    pendingLabel_.push_back(label_id);
}

void ProgramBuilder::nop() { emit({.op = Opcode::NOP}); }
void ProgramBuilder::halt() { emit({.op = Opcode::HALT}); }

void
ProgramBuilder::li(RegIndex rd, std::int64_t value)
{
    emit({.op = Opcode::LI, .rd = rd, .imm = value});
}

void
ProgramBuilder::mov(RegIndex rd, RegIndex rs)
{
    emit({.op = Opcode::MOV, .rd = rd, .rs1 = rs});
}

void
ProgramBuilder::add(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    emit({.op = Opcode::ADD, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::addi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    emit({.op = Opcode::ADDI, .rd = rd, .rs1 = rs1, .imm = imm});
}

void
ProgramBuilder::sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    emit({.op = Opcode::SUB, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    emit({.op = Opcode::MUL, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    emit({.op = Opcode::AND, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    emit({.op = Opcode::OR, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    emit({.op = Opcode::XOR, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::shl(RegIndex rd, RegIndex rs1, unsigned amount)
{
    emit({.op = Opcode::SHL, .rd = rd, .rs1 = rs1,
          .imm = static_cast<std::int64_t>(amount)});
}

void
ProgramBuilder::shr(RegIndex rd, RegIndex rs1, unsigned amount)
{
    emit({.op = Opcode::SHR, .rd = rd, .rs1 = rs1,
          .imm = static_cast<std::int64_t>(amount)});
}

void
ProgramBuilder::load(RegIndex rd, RegIndex rs1, std::int64_t imm,
                     unsigned size)
{
    emit({.op = Opcode::LOAD, .rd = rd, .rs1 = rs1, .imm = imm,
          .size = static_cast<std::uint8_t>(size)});
}

void
ProgramBuilder::store(RegIndex rs1, std::int64_t imm, RegIndex value_reg,
                      unsigned size)
{
    emit({.op = Opcode::STORE, .rs1 = rs1, .rs2 = value_reg, .imm = imm,
          .size = static_cast<std::uint8_t>(size)});
}

void
ProgramBuilder::blt(RegIndex rs1, RegIndex rs2, int label_id)
{
    emit({.op = Opcode::BLT, .rs1 = rs1, .rs2 = rs2}, label_id);
}

void
ProgramBuilder::bge(RegIndex rs1, RegIndex rs2, int label_id)
{
    emit({.op = Opcode::BGE, .rs1 = rs1, .rs2 = rs2}, label_id);
}

void
ProgramBuilder::beq(RegIndex rs1, RegIndex rs2, int label_id)
{
    emit({.op = Opcode::BEQ, .rs1 = rs1, .rs2 = rs2}, label_id);
}

void
ProgramBuilder::bne(RegIndex rs1, RegIndex rs2, int label_id)
{
    emit({.op = Opcode::BNE, .rs1 = rs1, .rs2 = rs2}, label_id);
}

void
ProgramBuilder::jmp(int label_id)
{
    emit({.op = Opcode::JMP}, label_id);
}

void
ProgramBuilder::clflush(RegIndex rs1, std::int64_t imm)
{
    emit({.op = Opcode::CLFLUSH, .rs1 = rs1, .imm = imm});
}

void
ProgramBuilder::fence()
{
    emit({.op = Opcode::FENCE});
}

void
ProgramBuilder::rdtscp(RegIndex rd)
{
    emit({.op = Opcode::RDTSCP, .rd = rd});
}

Program
ProgramBuilder::build()
{
    Program program;
    program.code_ = code_;
    program.inits_ = inits_;
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        const int label_id = pendingLabel_[pc];
        if (label_id < 0)
            continue;
        const std::int32_t target = labelTargets_[label_id];
        if (target < 0)
            fatal("ProgramBuilder::build: label ", label_id, " never bound");
        program.code_[pc].target = target;
    }
    return program;
}

} // namespace unxpec
