/**
 * @file
 * Reorder buffer. Entries are assigned consecutive sequence numbers at
 * dispatch, so lookup by sequence number is O(1) relative to the head.
 * Squash removes every entry younger than the mispredicted branch and
 * returns them so the cleanup engine can inspect their memory records.
 */

#ifndef UNXPEC_CPU_ROB_HH
#define UNXPEC_CPU_ROB_HH

#include <deque>
#include <vector>

#include "cpu/isa.hh"
#include "memory/hierarchy.hh"
#include "sim/types.hh"

namespace unxpec {

/** One in-flight instruction. */
struct RobEntry
{
    SeqNum seq = kSeqNone;
    std::size_t pc = 0;
    Instruction inst;

    // Operand capture: value is valid once the producer is done;
    // producer == kSeqNone means the value was read from the register
    // file at dispatch.
    SeqNum producer[2] = {kSeqNone, kSeqNone};
    bool srcReady[2] = {true, true};
    std::uint64_t srcValue[2] = {0, 0};

    bool issued = false;
    bool done = false;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle readyCycle = kCycleNever;
    std::uint64_t result = 0;

    /** Issued while an older conditional branch was unresolved. */
    bool speculative = false;

    // Branch bookkeeping.
    bool predictedTaken = false;
    bool resolvedTaken = false;
    bool mispredicted = false;
    std::size_t actualNextPc = 0;

    // Memory bookkeeping.
    bool hasMemRecord = false;
    MemAccessRecord memRecord;
    Addr effAddr = 0;
    std::uint64_t storeValue = 0;
};

/** Circular in-order buffer of in-flight instructions. */
class ReorderBuffer
{
  public:
    explicit ReorderBuffer(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Append a new entry (must not be full). */
    RobEntry &push(RobEntry entry);

    /** Oldest entry. */
    RobEntry &front() { return entries_.front(); }
    const RobEntry &front() const { return entries_.front(); }

    /** Retire the oldest entry. */
    void popFront() { entries_.pop_front(); }

    /** Entry for a sequence number, nullptr if not in flight. */
    RobEntry *find(SeqNum seq);
    const RobEntry *find(SeqNum seq) const;

    /**
     * Remove every entry younger than `seq` and return them
     * oldest-first.
     */
    std::vector<RobEntry> squashYoungerThan(SeqNum seq);

    /** True when a not-yet-done conditional branch older than `seq`
     *  exists. */
    bool olderUnresolvedBranch(SeqNum seq) const;

    void clear() { entries_.clear(); }

    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    unsigned capacity_;
    std::deque<RobEntry> entries_;
};

} // namespace unxpec

#endif // UNXPEC_CPU_ROB_HH
