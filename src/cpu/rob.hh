/**
 * @file
 * Reorder buffer. Entries are assigned consecutive sequence numbers at
 * dispatch, so lookup by sequence number is O(1) relative to the head.
 * Squash removes every entry younger than the mispredicted branch and
 * returns them so the cleanup engine can inspect their memory records.
 *
 * Hot-path layout: alongside the entry deque the ROB maintains small
 * seq-ascending side lists — unissued entries, issued-but-not-done
 * entries, in-flight stores/fences, pending (not-done) memory ops, and
 * unresolved conditional branches. The per-cycle pipeline loops (issue,
 * writeback, load gating, fence checks) walk these lists instead of
 * scanning every fat RobEntry, which turns the dominant O(ROB)-per-
 * cycle scans into O(relevant-entries). The lists are maintained by
 * push/popFront/squash and the markIssued/markDone funnels; the
 * iteration order (ascending seq) matches the old full scans exactly,
 * so issue, forwarding, and squash decisions are bit-identical.
 *
 * Operand wakeup is eager and dependency-driven. At dispatch a
 * consumer with a not-yet-done producer registers itself in the
 * producer's dependent bitmap (one bit per ring slot; slot = seq mod
 * capacity, which is stable for an entry's lifetime). markDone walks
 * only that bitmap, copies the result into each waiting consumer, and
 * moves consumers whose last operand just arrived onto readyUnissued_
 * — the list tickIssue scans. The historical alternative (tryWakeup on
 * every unissued entry every cycle) was the simulator's hottest loop:
 * O(ROB occupancy) producer lookups per cycle, ~80% of a mistrain
 * round's host time. Stale bits left by squashed consumers are
 * harmless: a wake checks that the slot's current occupant really
 * names this producer before touching it, and a slot's bitmap row is
 * zeroed when a new entry claims the slot.
 */

#ifndef UNXPEC_CPU_ROB_HH
#define UNXPEC_CPU_ROB_HH

#include <algorithm>
#include <vector>

#include "cpu/isa.hh"
#include "memory/hierarchy.hh"
#include "sim/annotate.hh"
#include "sim/arena.hh"
#include "sim/ring_queue.hh"
#include "sim/types.hh"

namespace unxpec {

class Tracer;

/** One in-flight instruction. */
struct RobEntry
{
    SeqNum seq = kSeqNone;
    std::size_t pc = 0;
    Instruction inst;

    // Operand capture: value is valid once the producer is done;
    // producer == kSeqNone means the value was read from the register
    // file at dispatch.
    SeqNum producer[2] = {kSeqNone, kSeqNone};
    bool srcReady[2] = {true, true};
    std::uint64_t srcValue[2] = {0, 0};

    bool issued = false;
    bool done = false;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle readyCycle = kCycleNever;
    std::uint64_t result = 0;

    /** Issued while an older conditional branch was unresolved. */
    UNXPEC_SPEC_STATE bool speculative = false;

    // Branch bookkeeping.
    bool predictedTaken = false;
    bool resolvedTaken = false;
    bool mispredicted = false;
    std::size_t actualNextPc = 0;

    // Memory bookkeeping.
    bool hasMemRecord = false;
    MemAccessRecord memRecord;
    Addr effAddr = 0;
    std::uint64_t storeValue = 0;
};

/** Circular in-order buffer of in-flight instructions. */
class ReorderBuffer
{
  public:
    /**
     * `arena` (optional) backs the fixed-capacity entry ring, the side
     * lists, and the squash scratch buffer; null falls back to the
     * heap. Every container is sized to `capacity` at construction —
     * a warm ROB performs no steady-state heap traffic.
     */
    explicit ReorderBuffer(unsigned capacity, Arena *arena = nullptr)
        : capacity_(capacity),
          entries_(capacity, arena),
          unissued_(ArenaAllocator<SeqNum>(arena)),
          outstanding_(ArenaAllocator<SeqNum>(arena)),
          storeFences_(ArenaAllocator<SeqNum>(arena)),
          pendingMem_(ArenaAllocator<SeqNum>(arena)),
          unresolvedBranches_(ArenaAllocator<SeqNum>(arena)),
          squashScratch_(ArenaAllocator<RobEntry>(arena)),
          readyUnissued_(ArenaAllocator<SeqNum>(arena)),
          depMask_(ArenaAllocator<std::uint64_t>(arena)),
          maskWords_((capacity + 63) / 64)
    {
        // One-time construction sizing; the side lists are bounded by
        // ROB occupancy and never regrow.
        unissued_.reserve(capacity);           // lint-ok(steady-alloc): ctor
        outstanding_.reserve(capacity);        // lint-ok(steady-alloc): ctor
        storeFences_.reserve(capacity);        // lint-ok(steady-alloc): ctor
        pendingMem_.reserve(capacity);         // lint-ok(steady-alloc): ctor
        unresolvedBranches_.reserve(capacity); // lint-ok(steady-alloc): ctor
        squashScratch_.reserve(capacity);      // lint-ok(steady-alloc): ctor
        readyUnissued_.reserve(capacity);      // lint-ok(steady-alloc): ctor
        // lint-ok(steady-alloc): ctor
        depMask_.assign(static_cast<std::size_t>(capacity) * maskWords_, 0);
    }

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Append a new entry (must not be full). */
    UNXPEC_TRANSITION("spec")
    RobEntry &push(RobEntry entry);

    /** Oldest entry. */
    RobEntry &front() { return entries_.front(); }
    const RobEntry &front() const { return entries_.front(); }

    /** Retire the oldest entry. */
    UNXPEC_TRANSITION("commit")
    void popFront();

    /** Entry for a sequence number, nullptr if not in flight. */
    RobEntry *
    find(SeqNum seq)
    {
        if (entries_.empty() || seq < entries_.front().seq ||
            seq > entries_.back().seq) {
            return nullptr;
        }
        return &entries_[seq - entries_.front().seq];
    }

    const RobEntry *
    find(SeqNum seq) const
    {
        return const_cast<ReorderBuffer *>(this)->find(seq);
    }

    /**
     * Remove every entry younger than `seq` and return them
     * oldest-first. The returned reference aliases an internal scratch
     * buffer that is reused (and overwritten) by the next call — the
     * caller must finish with it before squashing again.
     */
    UNXPEC_ROLLBACK("*")
    const ArenaVector<RobEntry> &squashYoungerThan(SeqNum seq);

    /**
     * Mark an entry issued. Must be used instead of writing
     * entry.issued so the side lists stay coherent.
     */
    UNXPEC_TRANSITION("spec")
    void markIssued(RobEntry &entry);

    /** Mark an entry done (same contract as markIssued). */
    UNXPEC_TRANSITION("spec")
    void markDone(RobEntry &entry);

    /** True when a not-yet-done conditional branch older than `seq`
     *  exists. */
    bool
    olderUnresolvedBranch(SeqNum seq) const
    {
        return !unresolvedBranches_.empty() &&
               unresolvedBranches_.front() < seq;
    }

    /** True when a not-yet-done memory operation older than `seq`
     *  exists (the fence/clflush readiness check). */
    bool
    olderPendingMem(SeqNum seq) const
    {
        return !pendingMem_.empty() && pendingMem_.front() < seq;
    }

    /** In-flight memory operations (LSQ occupancy). */
    unsigned memCount() const { return memCount_; }

    /** Seqs of entries not yet issued, ascending (the issue window). */
    const ArenaVector<SeqNum> &unissued() const { return unissued_; }

    /**
     * Seqs of unissued entries whose operands are both ready,
     * ascending — the only entries tickIssue has to look at. Kept
     * current by the eager dependency wakeup (see file comment): push
     * for entries ready at dispatch, markDone for entries whose last
     * producer just completed.
     */
    const ArenaVector<SeqNum> &readyUnissued() const { return readyUnissued_; }

    /** Seqs of issued-but-not-done entries, ascending (writeback). */
    const ArenaVector<SeqNum> &outstanding() const { return outstanding_; }

    /** Seqs of every in-flight store and fence, ascending (load
     *  gating / forwarding walks these instead of the whole ROB). */
    const ArenaVector<SeqNum> &storeFences() const { return storeFences_; }

    /** Seqs of not-yet-done memory ops, ascending (fence checks). */
    const ArenaVector<SeqNum> &pendingMem() const { return pendingMem_; }

    /** Seqs of not-yet-done conditional branches, ascending. */
    const ArenaVector<SeqNum> &
    unresolvedBranches() const
    {
        return unresolvedBranches_;
    }

    /**
     * Cross-check every side list against a full scan of the entry
     * deque (sim/audit.hh): the fast-path issue/writeback/gating
     * candidate sets must be element-for-element identical to the
     * reference model. Throws AuditError on divergence.
     */
    void auditInvariants(Cycle now) const;

    /**
     * Event tracer for instruction-lifecycle events (nullptr = off).
     * The push/markIssued/markDone/popFront/squash funnels stamp
     * dispatch/issue/writeback/commit/squash events through it; the
     * owning Core keeps the tracer's cycle current.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }
    Tracer *tracer() const { return tracer_; }

    UNXPEC_TRANSITION("reset")
    void clear();

    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    static void
    eraseSeq(ArenaVector<SeqNum> &list, SeqNum seq)
    {
        const auto it = std::lower_bound(list.begin(), list.end(), seq);
        if (it != list.end() && *it == seq)
            list.erase(it);
    }

    static void
    trimYoungerThan(ArenaVector<SeqNum> &list, SeqNum seq)
    {
        while (!list.empty() && list.back() > seq)
            list.pop_back();
    }

    /** Register `entry` in the dependent bitmap of each not-ready
     *  operand's producer (dispatch side of the eager wakeup). */
    void registerDependents(const RobEntry &entry);

    /** Deliver `producer`'s result to every registered dependent and
     *  promote newly-ready consumers onto readyUnissued_. */
    void wakeDependents(const RobEntry &producer);

    /** Wake the occupant of ring slot `slot`, if it is live and
     *  actually names `producer` (stale bits are skipped). */
    void wakeSlot(std::size_t slot, const RobEntry &producer);

    unsigned capacity_;
    RingQueue<RobEntry> entries_;

    // Seq-ascending side lists; see file comment. All are reserved to
    // `capacity_` at construction, so the push_back/insert maintenance
    // below never reallocates. Each list carries entries for in-flight
    // (hence possibly speculative) instructions that squashYoungerThan
    // must trim exactly — speculative state under the speccheck
    // contract, cross-checked dynamically by auditInvariants.
    UNXPEC_SPEC_STATE ArenaVector<SeqNum> unissued_;
    UNXPEC_SPEC_STATE ArenaVector<SeqNum> outstanding_;
    UNXPEC_SPEC_STATE ArenaVector<SeqNum> storeFences_;
    UNXPEC_SPEC_STATE ArenaVector<SeqNum> pendingMem_;
    UNXPEC_SPEC_STATE ArenaVector<SeqNum> unresolvedBranches_;
    /** Reused return buffer of squashYoungerThan (oldest-first). */
    ArenaVector<RobEntry> squashScratch_;
    /** Unissued entries with both operands ready (see readyUnissued()). */
    UNXPEC_SPEC_STATE ArenaVector<SeqNum> readyUnissued_;
    /**
     * Dependent bitmaps: row `seq % capacity` holds one bit per ring
     * slot whose occupant waits on that producer. maskWords_ 64-bit
     * words per row; the whole table is capacity * maskWords_ words,
     * arena-backed, zeroed row-by-row as slots are reclaimed.
     */
    UNXPEC_SPEC_STATE ArenaVector<std::uint64_t> depMask_;
    std::size_t maskWords_;
    UNXPEC_SPEC_STATE unsigned memCount_ = 0;
    Tracer *tracer_ = nullptr;

    /** Test-only corruption hook for proving the auditor fires. */
    friend struct AuditTap;
};

} // namespace unxpec

#endif // UNXPEC_CPU_ROB_HH
