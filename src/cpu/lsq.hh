/**
 * @file
 * Load/store queue discipline, expressed as ordering queries over the
 * reorder buffer. Loads may not issue past an older store with an
 * unresolved address; a fully covering older store forwards its value;
 * a partially overlapping one blocks the load until it leaves the ROB.
 * FENCE blocks younger memory operations until every older memory
 * operation has completed — the mechanism the unXpec receiver uses to
 * zero out T4 of the CleanupSpec timeline.
 */

#ifndef UNXPEC_CPU_LSQ_HH
#define UNXPEC_CPU_LSQ_HH

#include <cstdint>

#include "cpu/rob.hh"
#include "sim/types.hh"

namespace unxpec {

/** Outcome of querying whether a load may issue. */
enum class LoadGate
{
    Proceed,   //!< go to the cache
    Forward,   //!< take the value from an older in-flight store
    Blocked,   //!< wait (unknown older store address / fence / overlap)
};

/** Result of the load gating query. */
struct LoadGateResult
{
    LoadGate gate = LoadGate::Proceed;
    std::uint64_t forwardValue = 0;
};

/** Stateless LSQ policy over the ROB (capacity tracked by the core). */
class LoadStoreQueue
{
  public:
    explicit LoadStoreQueue(unsigned capacity) : capacity_(capacity) {}

    unsigned capacity() const { return capacity_; }

    /** Number of in-flight memory instructions in the ROB. */
    static unsigned occupancy(const ReorderBuffer &rob);

    /**
     * May the load `seq` (address `addr`, `size` bytes) issue?
     * Considers older stores and fences in the ROB.
     */
    static LoadGateResult gateLoad(const ReorderBuffer &rob, SeqNum seq,
                                   Addr addr, unsigned size);

    /** May the fence `seq` complete (all older memory ops done)? */
    static bool fenceReady(const ReorderBuffer &rob, SeqNum seq);

    /** Latest completion cycle among issued-but-incomplete loads older
     *  than `seq` (the squashing branch); 0 when there are none.
     *  Feeds T4 of the cleanup timeline. */
    static Cycle olderLoadsDrainCycle(const ReorderBuffer &rob, SeqNum seq);

  private:
    unsigned capacity_;
};

} // namespace unxpec

#endif // UNXPEC_CPU_LSQ_HH
