#include "cpu/core.hh"

#include <algorithm>

#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace unxpec {

Core::Core(const SystemConfig &cfg)
    : cfg_((cfg.validate(), cfg)),
      rng_(cfg.seed),
      hier_(cfg, rng_, &arena_),
      predictor_(cfg.core.predictor == PredictorKind::Gshare
                     ? std::unique_ptr<BranchPredictor>(
                           // lint-ok(steady-alloc): one-time ctor
                           std::make_unique<GsharePredictor>())
                     // lint-ok(steady-alloc): one-time ctor
                     : std::make_unique<BimodalPredictor>()),
      cleanup_(cfg.cleanupMode, cfg.cleanupTiming, rng_),
      lsq_(cfg.core.lsqEntries),
      stats_("cpu"),
      simTicks_(stats_.counter("sim_ticks", "total simulated cycles")),
      committedInstrs_(stats_.counter("committedInsts",
                                      "instructions committed")),
      branches_(stats_.counter("branches", "conditional branches resolved")),
      mispredicts_(stats_.counter("mispredicts", "branches mispredicted")),
      loads_(stats_.counter("loads", "loads executed")),
      stores_(stats_.counter("stores", "stores committed")),
      rob_(cfg.core.robEntries, &arena_),
      decodeQueue_(static_cast<std::size_t>(cfg.core.fetchWidth) *
                       (cfg.core.decodeDepth + 2),
                   &arena_)
{
    rat_.fill(kSeqNone);
    // Squash scratch is bounded by ROB capacity; sizing it here keeps
    // the misprediction path allocation-free from the first squash.
    // lint-ok(steady-alloc): one-time construction sizing
    squashRecords_.reserve(cfg.core.robEntries);
}

void
Core::reset(std::uint64_t seed)
{
    cfg_.seed = seed;
    rng_.seed(seed);
    hier_.reseed(seed);
    predictor_->reset();
    cleanup_.reset(cfg_.cleanupMode, cfg_.cleanupTiming);
    stats_.resetAll();

    program_ = nullptr;
    regs_.fill(0);
    rat_.fill(kSeqNone);
    rob_.clear();
    decodeQueue_.clear();
    fetchPC_ = 0;
    fetchStopped_ = false;
    fetchResumeCycle_ = 0;
    stallUntil_ = 0;
    commitStallUntil_ = 0;
    mulBusyUntil_ = 0;
    halted_ = false;
    nextSeq_ = 0;
    committed_ = 0;
    now_ = 0;
    runActive_ = false;
    runStart_ = 0;

    interruptProb_ = 0.0;
    interruptMin_ = 0;
    interruptMax_ = 0;
    budgetSet_ = false;
    budgetRemaining_ = 0;
    budgetWarned_ = false;
    limitTripped_ = false;
    runYield_ = nullptr;
    trace_ = nullptr;
    setEventTrace(nullptr);
}

void
Core::setCycleBudget(std::uint64_t cycles)
{
    budgetSet_ = cycles > 0;
    budgetRemaining_ = cycles;
    budgetWarned_ = false;
}

void
Core::setEventTrace(Tracer *tracer)
{
    eventTrace_ = tracer;
    if (tracer != nullptr)
        tracer->setNow(now_);
    rob_.setTracer(tracer);
    hier_.setTracer(tracer);
    cleanup_.setTracer(tracer);
}

void
Core::setInterruptNoise(double per_cycle_probability, unsigned min_stall,
                        unsigned max_stall)
{
    interruptProb_ = per_cycle_probability;
    interruptMin_ = min_stall;
    interruptMax_ = std::max(min_stall, max_stall);
}

RunResult
Core::run(const Program &program, const RunOptions &options)
{
    runBegin(program, options);
    if (runYield_ != nullptr) {
        // Batched execution: the driver steps this core, interleaving
        // its cycles with other trials' cores (see RunYield).
        runYield_->driveRun(*this);
    } else {
        while (runStep()) {
        }
    }
    return runFinish();
}

void
Core::runBegin(const Program &program, const RunOptions &options)
{
    program_ = &program;
    runOptions_ = options;
    if (options.resetMicroarch) {
        hier_.resetCaches();
        predictor_->reset();
    }
    if (options.loadData)
        program.loadInitialData(hier_.mem());

    rob_.clear();
    decodeQueue_.clear();
    rat_.fill(kSeqNone);
    regs_.fill(0);
    fetchPC_ = 0;
    fetchStopped_ = program.size() == 0;
    halted_ = false;
    committed_ = 0;
    runStart_ = now_;
    stallUntil_ = now_;
    commitStallUntil_ = now_;
    fetchResumeCycle_ = now_;

    runResult_ = RunResult{};

    // The effective per-run limit is the tighter of the per-run safety
    // valve and what remains of the trial's cycle budget (watchdog).
    runMaxCycles_ = budgetSet_
        ? std::min(options.maxCycles, budgetRemaining_)
        : options.maxCycles;
    runBudgetBinding_ = budgetSet_ && budgetRemaining_ <
        options.maxCycles;
    runActive_ = true;
}

bool
Core::runStep()
{
    // Loop-head conditions of the historical run() loop, in order.
    if (halted_ || committed_ >= runOptions_.maxInstructions)
        return false;
    if (now_ - runStart_ >= runMaxCycles_) {
        runResult_.cycleLimitReached = true;
        limitTripped_ = true;
        if (runBudgetBinding_) {
            if (!budgetWarned_) {
                budgetWarned_ = true;
                warn("Core::run: trial cycle budget exhausted with ",
                     committed_, " instructions committed in this "
                     "run; the trial will be censored");
            }
        } else {
            warn("Core::run: cycle budget exhausted after ",
                 runOptions_.maxCycles, " cycles with only ", committed_,
                 " of ", runOptions_.maxInstructions,
                 " instructions committed (no HALT reached); "
                 "returning a partial RunResult — raise "
                 "RunOptions::maxCycles if the program legitimately "
                 "runs this long");
        }
        return false;
    }
    ++now_;
    ++simTicks_;
    if (kTraceEnabled && eventTrace_ != nullptr)
        eventTrace_->setNow(now_);

    // External noise: other honest programs occasionally steal the
    // core (interrupts, scheduler ticks).
    if (interruptProb_ > 0.0 && rng_.chance(interruptProb_)) {
        const unsigned span = interruptMax_ - interruptMin_ + 1;
        stallUntil_ = std::max(
            stallUntil_, now_ + interruptMin_ + rng_.range(span));
    }

    // Cleanup (or noise) stall freezes every stage.
    if (now_ < stallUntil_)
        return true;

    tickWriteback(*program_);
    tickCommit();
    if (halted_ || committed_ >= runOptions_.maxInstructions)
        return false;
    tickIssue();
    tickDispatch();
    tickFetch(*program_);

    // Periodic invariant audit: compiled in only with
    // -DUNXPEC_AUDIT=ON, where it cross-checks every fast-path
    // structure against its slow reference model.
    if constexpr (kAuditEnabled) {
        if (now_ % audit::period() == 0)
            auditInvariants();
    }

    // Run-off detection: nothing in flight and nothing to fetch.
    if (rob_.empty() && decodeQueue_.empty() && fetchStopped_)
        return false;

    if (runOptions_.warmupInstructions > 0 &&
        runResult_.warmupCycles == 0 &&
        committed_ >= runOptions_.warmupInstructions) {
        runResult_.warmupCycles = now_ - runStart_;
    }
    return true;
}

RunResult
Core::runFinish()
{
    if (runOptions_.warmupInstructions > 0 && runResult_.warmupCycles == 0)
        runResult_.warmupCycles = now_ - runStart_;

    runResult_.cycles = now_ - runStart_;
    runResult_.instructions = committed_;
    runResult_.halted = halted_;
    runResult_.regs = regs_;
    if (budgetSet_)
        budgetRemaining_ -= std::min(budgetRemaining_, runResult_.cycles);
    program_ = nullptr;
    runActive_ = false;
    return runResult_;
}

void
Core::advanceTo(Cycle cycle)
{
    if (cycle <= now_)
        return;
    now_ = cycle;
    if (kTraceEnabled && eventTrace_ != nullptr)
        eventTrace_->setNow(now_);
}

void
Core::executeEntry(RobEntry &entry)
{
    const auto s0 = entry.srcValue[0];
    const auto s1 = entry.srcValue[1];
    const auto imm = static_cast<std::uint64_t>(entry.inst.imm);

    switch (entry.inst.op) {
      case Opcode::LI:   entry.result = imm; break;
      case Opcode::MOV:  entry.result = s0; break;
      case Opcode::ADD:  entry.result = s0 + s1; break;
      case Opcode::ADDI: entry.result = s0 + imm; break;
      case Opcode::SUB:  entry.result = s0 - s1; break;
      case Opcode::MUL:  entry.result = s0 * s1; break;
      case Opcode::AND:  entry.result = s0 & s1; break;
      case Opcode::OR:   entry.result = s0 | s1; break;
      case Opcode::XOR:  entry.result = s0 ^ s1; break;
      case Opcode::SHL:  entry.result = s0 << (imm & 63); break;
      case Opcode::SHR:  entry.result = s0 >> (imm & 63); break;
      case Opcode::BLT:
        entry.resolvedTaken =
            static_cast<std::int64_t>(s0) < static_cast<std::int64_t>(s1);
        break;
      case Opcode::BGE:
        entry.resolvedTaken =
            static_cast<std::int64_t>(s0) >= static_cast<std::int64_t>(s1);
        break;
      case Opcode::BEQ:  entry.resolvedTaken = s0 == s1; break;
      case Opcode::BNE:  entry.resolvedTaken = s0 != s1; break;
      default:
        break;
    }
}

void
Core::tickIssue()
{
    unsigned issued = 0;
    // Walk the operand-ready unissued list (ascending seq, the same
    // relative order as the historical full-window scan — entries
    // whose operands are not ready could never issue, so skipping them
    // outright changes no decision). Readiness is maintained eagerly
    // by the ROB's dependency wakeup at dispatch/markDone, replacing
    // the per-cycle O(occupancy) tryWakeup rescan that dominated the
    // simulator's profile. rob_.markIssued erases the current element,
    // so the index only advances on skip.
    const auto &window = rob_.readyUnissued();
    for (std::size_t i = 0; i < window.size();) {
        if (issued >= cfg_.core.issueWidth)
            break;
        RobEntry &entry = *rob_.find(window[i]);

        const Opcode op = entry.inst.op;

        if (op == Opcode::LOAD) {
            const Addr addr =
                entry.srcValue[0] + static_cast<Addr>(entry.inst.imm);
            const auto gate = LoadStoreQueue::gateLoad(
                rob_, entry.seq, addr, entry.inst.size);
            if (gate.gate == LoadGate::Blocked) {
                ++i;
                continue;
            }
            const bool speculative =
                gate.gate == LoadGate::Proceed &&
                rob_.olderUnresolvedBranch(entry.seq);
            if (speculative &&
                cfg_.cleanupMode == CleanupMode::DelayOnMiss &&
                !hier_.l1d().present(lineAlign(addr), now_)) {
                // Delay-on-miss: a speculative L1 miss simply waits
                // until the speculation resolves; L1 hits are served
                // (they change no cache state).
                ++i;
                continue;
            }
            entry.effAddr = addr;
            rob_.markIssued(entry);
            entry.issueCycle = now_;
            ++loads_;
            if (gate.gate == LoadGate::Forward) {
                entry.result = gate.forwardValue;
                entry.readyCycle = now_ + 1;
            } else {
                entry.speculative = speculative;
                if (speculative &&
                    cfg_.cleanupMode == CleanupMode::InvisiSpec) {
                    // Invisible scheme: serve from the shadow buffer;
                    // no cache state changes until commit.
                    entry.memRecord =
                        hier_.accessInvisible(addr, now_, entry.seq);
                } else if (speculative &&
                           cfg_.cleanupMode == CleanupMode::SafeSpec) {
                    // Shadow L1: the fill lands next to the caches, not
                    // in them; promoted at commit, discarded on squash.
                    entry.memRecord =
                        hier_.accessSafeSpec(addr, now_, entry.seq);
                } else if (speculative &&
                           cfg_.cleanupMode == CleanupMode::CacheSquash) {
                    // The fill parks in a cancellable MSHR entry;
                    // squash propagates into the MSHR and cancels it.
                    entry.memRecord =
                        hier_.accessCacheSquash(addr, now_, entry.seq);
                } else {
                    entry.memRecord = hier_.access(addr, now_, false,
                                                   speculative,
                                                   entry.seq);
                }
                entry.hasMemRecord = true;
                entry.readyCycle = entry.memRecord.ready;
                entry.result = hier_.mem().read(addr, entry.inst.size);
            }
            ++issued;
            continue;
        }

        if (op == Opcode::STORE) {
            entry.effAddr =
                entry.srcValue[0] + static_cast<Addr>(entry.inst.imm);
            entry.storeValue = entry.srcValue[1];
            rob_.markIssued(entry);
            entry.issueCycle = now_;
            entry.readyCycle = now_ + 1;
            ++issued;
            continue;
        }

        if (op == Opcode::CLFLUSH) {
            // clflush is ordered: it only executes non-speculatively,
            // after all older memory operations have completed.
            if (rob_.olderUnresolvedBranch(entry.seq) ||
                !LoadStoreQueue::fenceReady(rob_, entry.seq)) {
                ++i;
                continue;
            }
            const Addr addr =
                entry.srcValue[0] + static_cast<Addr>(entry.inst.imm);
            entry.effAddr = addr;
            hier_.flushLine(addr);
            rob_.markIssued(entry);
            entry.issueCycle = now_;
            entry.readyCycle = now_ + cfg_.core.clflushLatency;
            ++issued;
            continue;
        }

        if (op == Opcode::FENCE) {
            if (!LoadStoreQueue::fenceReady(rob_, entry.seq)) {
                ++i;
                continue;
            }
            rob_.markIssued(entry);
            entry.issueCycle = now_;
            entry.readyCycle = now_ + 1;
            ++issued;
            continue;
        }

        if (op == Opcode::RDTSCP) {
            // Serializing: waits for every older instruction. An older
            // not-done entry is either still unissued (then the full
            // unissued list's head is older than us) or
            // issued-but-outstanding.
            const auto &outst = rob_.outstanding();
            const bool all_older_done =
                rob_.unissued().front() == entry.seq &&
                (outst.empty() || outst.front() >= entry.seq);
            if (!all_older_done) {
                ++i;
                continue;
            }
            entry.result = now_;
            rob_.markIssued(entry);
            entry.issueCycle = now_;
            entry.readyCycle = now_ + 1;
            ++issued;
            continue;
        }

        // ALU ops and conditional branches.
        executeEntry(entry);
        rob_.markIssued(entry);
        entry.issueCycle = now_;
        const unsigned latency = op == Opcode::MUL
            ? cfg_.core.mulLatency : cfg_.core.intAluLatency;
        if (op == Opcode::MUL && !cfg_.core.mulPipelined) {
            // Non-pipelined multiplier: one op occupies the unit end to
            // end. The busy window deliberately survives squashes —
            // transient MULs keep the FU busy past their own squash,
            // which is the SpectreRewind contention channel the
            // contention receiver measures.
            const Cycle start = std::max(now_, mulBusyUntil_);
            entry.readyCycle = start + latency;
            mulBusyUntil_ = entry.readyCycle;
        } else {
            entry.readyCycle = now_ + latency;
        }
        ++issued;
    }
}

void
Core::tickWriteback(const Program &program)
{
    (void)program;
    // Walk the issued-but-not-done side list (ascending seq, same
    // order as a full ROB scan). rob_.markDone erases the current
    // element, so the index only advances on skip.
    const auto &outstanding = rob_.outstanding();
    for (std::size_t i = 0; i < outstanding.size();) {
        RobEntry &entry = *rob_.find(outstanding[i]);
        if (entry.readyCycle > now_) {
            ++i;
            continue;
        }
        rob_.markDone(entry);
        if (isCondBranch(entry.inst.op)) {
            resolveBranch(entry);
            if (entry.mispredicted) {
                // Younger entries are gone (and trimmed off the side
                // lists); nothing left to complete this cycle.
                break;
            }
        }
    }
}

void
Core::resolveBranch(RobEntry &branch)
{
    ++branches_;
    branch.actualNextPc = branch.resolvedTaken
        ? static_cast<std::size_t>(branch.inst.target)
        : branch.pc + 1;
    predictor_->update(branch.pc, branch.resolvedTaken);

    const bool mispredicted =
        branch.resolvedTaken != branch.predictedTaken;
    if (kTraceEnabled && eventTrace_ != nullptr &&
        eventTrace_->enabled(kTraceCatBranch)) {
        std::uint16_t flags = 0;
        if (branch.resolvedTaken)
            flags |= kTraceFlagTaken;
        if (mispredicted)
            flags |= kTraceFlagMispredict;
        eventTrace_->instant(TraceKind::BranchResolve, branch.seq,
                             kAddrInvalid, branch.pc, 0, flags);
    }
    if (!mispredicted)
        return;

    ++mispredicts_;
    branch.mispredicted = true;
    squashAfter(branch);
}

void
Core::squashAfter(RobEntry &branch)
{
    const auto &squashed = rob_.squashYoungerThan(branch.seq);

    // Scratch buffers reserved to ROB capacity at construction: the
    // squash path reuses them so a warm core never allocates here.
    squashRecords_.clear();
    for (const auto &entry : squashed) {
        if (isLoad(entry.inst.op) && entry.hasMemRecord)
            // lint-ok(steady-alloc): reserved
            squashRecords_.push_back(entry.memRecord);
    }

    SpecTracker::buildJobInto(now_, squashRecords_, squashJob_);
    const Cycle older_drain =
        LoadStoreQueue::olderLoadsDrainCycle(rob_, branch.seq);
    const Cycle cleanup_until =
        cleanup_.rollback(hier_, squashJob_, older_drain);
    stallUntil_ = std::max(stallUntil_, cleanup_until);

    // Rollback-completeness audit: right after the undo, no squashed
    // installer may still mark any cache line or MSHR entry.
    if constexpr (kAuditEnabled)
        hier_.auditRollbackComplete(branch.seq, now_);

    decodeQueue_.clear();
    fetchPC_ = branch.actualNextPc;
    fetchStopped_ = fetchPC_ >= program_->size();
    // The front end restarts only after the rollback finishes: the
    // core is stalled for the cleanup, then pays the redirect bubble.
    fetchResumeCycle_ =
        std::max(now_, stallUntil_) + cfg_.core.branchRedirectPenalty;
    // Sequence numbers restart right after the branch so ROB lookup
    // stays O(1) on consecutive numbering.
    nextSeq_ = branch.seq + 1;
    rebuildRat();
}

void
Core::rebuildRat()
{
    rat_.fill(kSeqNone);
    for (const auto &entry : rob_) {
        if (writesReg(entry.inst.op))
            rat_[entry.inst.rd] = entry.seq;
    }
}

void
Core::tickCommit()
{
    if (now_ < commitStallUntil_)
        return;
    unsigned committed_now = 0;
    while (committed_now < cfg_.core.commitWidth && !rob_.empty()) {
        RobEntry &head = rob_.front();
        if (!head.done)
            break;

        if (head.hasMemRecord && head.memRecord.invisible) {
            // InvisiSpec expose/validate: the buffered load becomes
            // architectural. A load that hit during speculation only
            // needs exposure; one that missed must validate with a
            // real access, and commit waits for it — the "two reads
            // per speculative load" cost the paper's intro cites.
            const MemAccessRecord expose = hier_.access(
                head.effAddr, now_, false, false, head.seq);
            head.memRecord.invisible = false;
            head.hasMemRecord = false;
            if (!head.memRecord.l1Hit) {
                commitStallUntil_ = expose.ready;
                if (now_ < commitStallUntil_)
                    return;
            }
        }

        if (head.inst.op == Opcode::HALT) {
            halted_ = true;
            ++committed_;
            ++committedInstrs_;
            rob_.popFront();
            break;
        }

        if (isStore(head.inst.op)) {
            commitStore(head);
        } else if (isLoad(head.inst.op) && head.hasMemRecord) {
            if (head.memRecord.shadow) {
                // SafeSpec promotion is free: the data is on chip, so
                // unlike InvisiSpec there is no validate stall.
                hier_.commitShadow(head.memRecord, now_);
            } else if (head.memRecord.mshrOnly) {
                hier_.commitPendingFill(head.memRecord, now_);
            } else {
                hier_.commitInstall(head.memRecord);
            }
        }

        if (writesReg(head.inst.op)) {
            regs_[head.inst.rd] = head.result;
            if (rat_[head.inst.rd] == head.seq)
                rat_[head.inst.rd] = kSeqNone;
        }

        if (trace_ != nullptr) {
            *trace_ << now_ << " " << head.seq << " " << head.pc << ": "
                    << disassemble(head.inst);
            if (writesReg(head.inst.op))
                *trace_ << " = " << head.result;
            *trace_ << "\n";
        }

        ++committed_;
        ++committedInstrs_;
        ++committed_now;
        rob_.popFront();
    }
}

void
Core::commitStore(RobEntry &entry)
{
    ++stores_;
    hier_.mem().write(entry.effAddr, entry.storeValue, entry.inst.size);
    // Write-allocate fill at commit; latency hidden by the store
    // buffer, so the result timing is ignored.
    hier_.access(entry.effAddr, now_, true, false, entry.seq);
}

void
Core::tickDispatch()
{
    unsigned dispatched = 0;
    while (dispatched < cfg_.core.fetchWidth && !decodeQueue_.empty() &&
           !rob_.full()) {
        const FetchedInst &fetched = decodeQueue_.front();
        if (fetched.availCycle > now_)
            break;
        if (isMem(fetched.inst.op) &&
            LoadStoreQueue::occupancy(rob_) >= lsq_.capacity()) {
            break;
        }

        RobEntry entry;
        entry.seq = nextSeq_++;
        entry.pc = fetched.pc;
        entry.inst = fetched.inst;
        entry.predictedTaken = fetched.predictedTaken;
        entry.dispatchCycle = now_;

        const Opcode op = entry.inst.op;
        const RegIndex sources[2] = {entry.inst.rs1, entry.inst.rs2};
        const bool reads[2] = {readsRs1(op), readsRs2(op)};
        for (unsigned slot = 0; slot < 2; ++slot) {
            if (!reads[slot])
                continue;
            const SeqNum producer = rat_[sources[slot]];
            const RobEntry *prod =
                producer == kSeqNone ? nullptr : rob_.find(producer);
            if (prod == nullptr) {
                // No producer, or the producer already committed (its
                // value is architectural: no younger writer of this
                // register can have committed before this entry).
                entry.srcValue[slot] = regs_[sources[slot]];
            } else if (prod->done) {
                entry.srcValue[slot] = prod->result;
            } else {
                // Pending producer: ReorderBuffer::push registers this
                // entry for an eager wakeup at the producer's markDone.
                entry.producer[slot] = producer;
                entry.srcReady[slot] = false;
            }
        }

        if (writesReg(op))
            rat_[entry.inst.rd] = entry.seq;

        // Instructions with no work complete at dispatch.
        if (op == Opcode::NOP || op == Opcode::HALT || op == Opcode::JMP) {
            entry.issued = true;
            entry.done = true;
            entry.readyCycle = now_;
            if (op == Opcode::JMP) {
                entry.resolvedTaken = true;
                entry.actualNextPc =
                    static_cast<std::size_t>(entry.inst.target);
            }
        }

        rob_.push(std::move(entry));
        decodeQueue_.pop_front();
        ++dispatched;
    }
}

void
Core::tickFetch(const Program &program)
{
    if (fetchStopped_ || now_ < fetchResumeCycle_)
        return;

    const std::size_t queue_limit =
        static_cast<std::size_t>(cfg_.core.fetchWidth) *
        (cfg_.core.decodeDepth + 2);

    unsigned fetched = 0;
    while (fetched < cfg_.core.fetchWidth &&
           decodeQueue_.size() < queue_limit) {
        if (fetchPC_ >= program.size()) {
            fetchStopped_ = true;
            break;
        }
        const Instruction &inst = program.at(fetchPC_);

        const Cycle icache_ready =
            hier_.fetchReady(Program::pcToAddr(fetchPC_), now_);
        const Cycle avail =
            std::max(icache_ready, now_ + cfg_.l1i.hitLatency) +
            cfg_.core.decodeDepth;

        FetchedInst fetched_inst;
        fetched_inst.pc = fetchPC_;
        fetched_inst.inst = inst;
        fetched_inst.availCycle = avail;

        if (kTraceEnabled && eventTrace_ != nullptr &&
            eventTrace_->enabled(kTraceCatCpu)) {
            eventTrace_->instant(TraceKind::Fetch, kSeqNone, kAddrInvalid,
                                 fetched_inst.pc);
        }

        if (isCondBranch(inst.op)) {
            fetched_inst.predictedTaken =
                predictor_->predict(fetchPC_);
            fetchPC_ = fetched_inst.predictedTaken
                ? static_cast<std::size_t>(inst.target) : fetchPC_ + 1;
        } else if (inst.op == Opcode::JMP) {
            fetched_inst.predictedTaken = true;
            fetchPC_ = static_cast<std::size_t>(inst.target);
        } else if (inst.op == Opcode::HALT) {
            fetchPC_ = fetchPC_ + 1;
            decodeQueue_.push_back(fetched_inst); // lint-ok(steady-alloc): ring
            fetchStopped_ = true;
            break;
        } else {
            fetchPC_ = fetchPC_ + 1;
        }

        decodeQueue_.push_back(fetched_inst); // lint-ok(steady-alloc): ring
        ++fetched;
    }
}

} // namespace unxpec
