#include "cpu/lsq.hh"

#include <algorithm>

#include "sim/trace.hh"

namespace unxpec {

namespace {

/** Gate-decision instant through the ROB's tracer, if attached. */
inline void
traceGate(const ReorderBuffer &rob, TraceKind kind, SeqNum seq, Addr addr)
{
    if (kTraceEnabled) {
        if (Tracer *tracer = rob.tracer();
            tracer != nullptr && tracer->enabled(kTraceCatCpu)) {
            tracer->instant(kind, seq, lineAlign(addr));
        }
    }
}

} // namespace

unsigned
LoadStoreQueue::occupancy(const ReorderBuffer &rob)
{
    return rob.memCount();
}

LoadGateResult
LoadStoreQueue::gateLoad(const ReorderBuffer &rob, SeqNum seq, Addr addr,
                         unsigned size)
{
    LoadGateResult result;
    // Walk only the in-flight stores and fences (ascending seq, same
    // order as a full ROB scan).
    for (const SeqNum older_seq : rob.storeFences()) {
        if (older_seq >= seq)
            break;
        const RobEntry &entry = *rob.find(older_seq);
        if (entry.inst.op == Opcode::FENCE) {
            if (!entry.done) {
                result.gate = LoadGate::Blocked;
                traceGate(rob, TraceKind::LoadBlocked, seq, addr);
                return result;
            }
            continue;
        }
        if (!entry.done) {
            // Address (or data) not resolved yet: be conservative.
            result.gate = LoadGate::Blocked;
            traceGate(rob, TraceKind::LoadBlocked, seq, addr);
            return result;
        }
        const Addr store_begin = entry.effAddr;
        const Addr store_end = store_begin + entry.inst.size;
        const Addr load_begin = addr;
        const Addr load_end = addr + size;
        const bool overlap =
            store_begin < load_end && load_begin < store_end;
        if (!overlap)
            continue;
        if (store_begin <= load_begin && load_end <= store_end) {
            // Fully covered: forward (latest older store wins, so keep
            // scanning and overwrite).
            const unsigned shift =
                static_cast<unsigned>(load_begin - store_begin) * 8;
            std::uint64_t value = entry.storeValue >> shift;
            if (size < 8)
                value &= (1ull << (size * 8)) - 1;
            result.gate = LoadGate::Forward;
            result.forwardValue = value;
        } else {
            // Partial overlap: wait for the store to drain.
            result.gate = LoadGate::Blocked;
            traceGate(rob, TraceKind::LoadBlocked, seq, addr);
            return result;
        }
    }
    if (result.gate == LoadGate::Forward)
        traceGate(rob, TraceKind::LoadForward, seq, addr);
    return result;
}

bool
LoadStoreQueue::fenceReady(const ReorderBuffer &rob, SeqNum seq)
{
    return !rob.olderPendingMem(seq);
}

Cycle
LoadStoreQueue::olderLoadsDrainCycle(const ReorderBuffer &rob, SeqNum seq)
{
    Cycle drain = 0;
    for (const auto &entry : rob) {
        if (entry.seq >= seq)
            break;
        if (isLoad(entry.inst.op) && entry.issued && !entry.done)
            drain = std::max(drain, entry.readyCycle);
    }
    return drain;
}

} // namespace unxpec
