#include "cpu/assembler.hh"

#include <cctype>
#include <set>
#include <sstream>
#include <vector>

#include "sim/log.hh"

namespace unxpec {

namespace {

/** One significant source line. */
struct SourceLine
{
    unsigned number = 0;
    std::vector<std::string> labels; //!< labels bound to this index
    std::string mnemonic;
    std::vector<std::string> operands;
    bool isDirective = false;
};

std::string
stripComment(const std::string &line)
{
    const std::size_t semicolon = line.find(';');
    const std::size_t hash = line.find('#');
    const std::size_t cut = std::min(semicolon, hash);
    return cut == std::string::npos ? line : line.substr(0, cut);
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

/** Split an operand list on commas, trimming each piece. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> operands;
    std::string current;
    for (const char ch : text) {
        if (ch == ',') {
            operands.push_back(trim(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    const std::string last = trim(current);
    if (!last.empty())
        operands.push_back(last);
    return operands;
}

class Parser
{
  public:
    explicit Parser(const std::string &source) { scan(source); }

    Program
    emit(std::map<std::string, Addr> &symbols)
    {
        symbols_ = &symbols;

        // Directives first: allocate data so instruction immediates
        // can reference the symbols.
        for (const SourceLine &line : lines_) {
            if (line.isDirective)
                applyDirective(line);
        }

        // Map label -> instruction index.
        unsigned index = 0;
        for (const SourceLine &line : lines_) {
            for (const std::string &label : line.labels)
                labelIndex_[label] = index;
            if (!line.isDirective && !line.mnemonic.empty())
                ++index;
        }
        instructionCount_ = index;

        // Pre-create builder labels for every referenced target so
        // backward targets are bound in emission order.
        for (const SourceLine &line : lines_) {
            if (line.isDirective || line.operands.empty())
                continue;
            const std::string &m = line.mnemonic;
            if (m == "jmp" || m == "blt" || m == "bge" || m == "beq" ||
                m == "bne") {
                parseTarget(line, line.operands.back());
            }
        }

        // Emit.
        index = 0;
        for (const SourceLine &line : lines_) {
            if (line.isDirective || line.mnemonic.empty())
                continue;
            bindPending(index);
            emitInstruction(line, index);
            ++index;
        }
        bindPending(index); // labels at end-of-program
        return builder_.build();
    }

  private:
    void
    scan(const std::string &source)
    {
        std::istringstream stream(source);
        std::string raw;
        unsigned number = 0;
        std::vector<std::string> pending_labels;
        while (std::getline(stream, raw)) {
            ++number;
            std::string text = trim(stripComment(raw));
            // Peel leading "name:" labels.
            for (;;) {
                const std::size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string head = trim(text.substr(0, colon));
                if (head.empty() || head.find(' ') != std::string::npos ||
                    head[0] == '.') {
                    break;
                }
                pending_labels.push_back(head);
                text = trim(text.substr(colon + 1));
            }
            if (text.empty())
                continue;

            SourceLine line;
            line.number = number;
            line.labels = pending_labels;
            pending_labels.clear();
            line.isDirective = text[0] == '.';

            const std::size_t space = text.find_first_of(" \t");
            line.mnemonic = text.substr(0, space);
            if (space != std::string::npos) {
                const std::string rest = trim(text.substr(space + 1));
                if (line.isDirective) {
                    // Directive operands are whitespace-separated.
                    std::istringstream words(rest);
                    std::string word;
                    while (words >> word)
                        line.operands.push_back(word);
                } else {
                    line.operands = splitOperands(rest);
                }
            }
            lines_.push_back(std::move(line));
        }
        if (!pending_labels.empty()) {
            SourceLine line;
            line.labels = pending_labels;
            lines_.push_back(std::move(line));
        }
    }

    [[noreturn]] void
    syntaxError(const SourceLine &line, const std::string &what) const
    {
        fatal("assembler: line ", line.number, ": ", what);
    }

    void
    applyDirective(const SourceLine &line)
    {
        const auto &ops = line.operands;
        if (line.mnemonic == ".data") {
            // .data name bytes [align]
            if (ops.size() < 2)
                syntaxError(line, ".data needs a name and a size");
            const std::size_t bytes = std::stoull(ops[1], nullptr, 0);
            const std::size_t align =
                ops.size() > 2 ? std::stoull(ops[2], nullptr, 0)
                               : kLineBytes;
            (*symbols_)[ops[0]] = builder_.alloc(bytes, align);
        } else if (line.mnemonic == ".word" || line.mnemonic == ".byte") {
            // .word name offset value
            if (ops.size() != 3)
                syntaxError(line, line.mnemonic +
                                      " needs name, offset, value");
            const auto it = symbols_->find(ops[0]);
            if (it == symbols_->end())
                syntaxError(line, "unknown data symbol " + ops[0]);
            const Addr addr =
                it->second + std::stoull(ops[1], nullptr, 0);
            const std::uint64_t value = std::stoull(ops[2], nullptr, 0);
            if (line.mnemonic == ".word")
                builder_.initWord64(addr, value);
            else
                builder_.initByte(addr, static_cast<std::uint8_t>(value));
        } else {
            syntaxError(line, "unknown directive " + line.mnemonic);
        }
    }

    RegIndex
    parseReg(const SourceLine &line, const std::string &token) const
    {
        if (token.size() < 2 || token[0] != 'r')
            syntaxError(line, "expected register, got '" + token + "'");
        const unsigned long value = std::stoul(token.substr(1));
        if (value >= kNumRegs)
            syntaxError(line, "register out of range: " + token);
        return static_cast<RegIndex>(value);
    }

    std::int64_t
    parseImm(const SourceLine &line, const std::string &token) const
    {
        if (!token.empty() &&
            (std::isdigit(static_cast<unsigned char>(token[0])) ||
             token[0] == '-' || token[0] == '+')) {
            return std::stoll(token, nullptr, 0);
        }
        const auto it = symbols_->find(token);
        if (it == symbols_->end())
            syntaxError(line, "unknown symbol '" + token + "'");
        return static_cast<std::int64_t>(it->second);
    }

    /** Parse "[rN]", "[rN+imm]", "[rN-imm]". */
    void
    parseMem(const SourceLine &line, const std::string &token,
             RegIndex &reg, std::int64_t &imm) const
    {
        if (token.size() < 4 || token.front() != '[' ||
            token.back() != ']') {
            syntaxError(line, "expected [rN+imm], got '" + token + "'");
        }
        const std::string inner = token.substr(1, token.size() - 2);
        const std::size_t split = inner.find_first_of("+-", 1);
        reg = parseReg(line, trim(inner.substr(0, split)));
        imm = 0;
        if (split != std::string::npos)
            imm = parseImm(line, trim(inner.substr(split)));
    }

    /** Branch/jump target: a label name or "@index". */
    int
    parseTarget(const SourceLine &line, const std::string &token)
    {
        unsigned target_index;
        if (token[0] == '@') {
            target_index =
                static_cast<unsigned>(std::stoul(token.substr(1)));
        } else {
            const auto it = labelIndex_.find(token);
            if (it == labelIndex_.end())
                syntaxError(line, "unknown label '" + token + "'");
            target_index = it->second;
        }
        if (target_index > instructionCount_)
            syntaxError(line, "branch target out of range");
        auto it = labelForIndex_.find(target_index);
        if (it == labelForIndex_.end()) {
            it = labelForIndex_.emplace(target_index, builder_.label())
                     .first;
        }
        return it->second;
    }

    void
    bindPending(unsigned index)
    {
        const auto it = labelForIndex_.find(index);
        if (it != labelForIndex_.end() && !bound_.count(index)) {
            builder_.bind(it->second);
            bound_.insert(index);
        }
    }

    void
    emitInstruction(const SourceLine &line, unsigned index)
    {
        (void)index;
        const std::string &m = line.mnemonic;
        const auto &ops = line.operands;
        auto need = [&](std::size_t count) {
            if (ops.size() != count) {
                syntaxError(line, m + " expects " +
                                      std::to_string(count) +
                                      " operands");
            }
        };

        // Memory mnemonics carry a size suffix: load8/load1/..., or
        // plain load == load8.
        if (m.rfind("load", 0) == 0) {
            need(2);
            const unsigned size =
                m.size() > 4 ? std::stoul(m.substr(4)) : 8;
            RegIndex base;
            std::int64_t imm;
            parseMem(line, ops[1], base, imm);
            builder_.load(parseReg(line, ops[0]), base, imm, size);
            return;
        }
        if (m.rfind("store", 0) == 0) {
            need(2);
            const unsigned size =
                m.size() > 5 ? std::stoul(m.substr(5)) : 8;
            RegIndex base;
            std::int64_t imm;
            parseMem(line, ops[0], base, imm);
            builder_.store(base, imm, parseReg(line, ops[1]), size);
            return;
        }
        if (m == "clflush") {
            need(1);
            RegIndex base;
            std::int64_t imm;
            parseMem(line, ops[0], base, imm);
            builder_.clflush(base, imm);
            return;
        }

        if (m == "nop") { builder_.nop(); return; }
        if (m == "halt") { builder_.halt(); return; }
        if (m == "fence") { builder_.fence(); return; }
        if (m == "rdtscp") {
            need(1);
            builder_.rdtscp(parseReg(line, ops[0]));
            return;
        }
        if (m == "li") {
            need(2);
            builder_.li(parseReg(line, ops[0]), parseImm(line, ops[1]));
            return;
        }
        if (m == "mov") {
            need(2);
            builder_.mov(parseReg(line, ops[0]), parseReg(line, ops[1]));
            return;
        }
        if (m == "addi" || m == "shl" || m == "shr") {
            need(3);
            const RegIndex rd = parseReg(line, ops[0]);
            const RegIndex rs = parseReg(line, ops[1]);
            const std::int64_t imm = parseImm(line, ops[2]);
            if (m == "addi")
                builder_.addi(rd, rs, imm);
            else if (m == "shl")
                builder_.shl(rd, rs, static_cast<unsigned>(imm));
            else
                builder_.shr(rd, rs, static_cast<unsigned>(imm));
            return;
        }
        if (m == "add" || m == "sub" || m == "mul" || m == "and" ||
            m == "or" || m == "xor") {
            need(3);
            const RegIndex rd = parseReg(line, ops[0]);
            const RegIndex rs1 = parseReg(line, ops[1]);
            const RegIndex rs2 = parseReg(line, ops[2]);
            if (m == "add") builder_.add(rd, rs1, rs2);
            else if (m == "sub") builder_.sub(rd, rs1, rs2);
            else if (m == "mul") builder_.mul(rd, rs1, rs2);
            else if (m == "and") builder_.and_(rd, rs1, rs2);
            else if (m == "or") builder_.or_(rd, rs1, rs2);
            else builder_.xor_(rd, rs1, rs2);
            return;
        }
        if (m == "blt" || m == "bge" || m == "beq" || m == "bne") {
            need(3);
            const RegIndex rs1 = parseReg(line, ops[0]);
            const RegIndex rs2 = parseReg(line, ops[1]);
            const int label = parseTarget(line, ops[2]);
            if (m == "blt") builder_.blt(rs1, rs2, label);
            else if (m == "bge") builder_.bge(rs1, rs2, label);
            else if (m == "beq") builder_.beq(rs1, rs2, label);
            else builder_.bne(rs1, rs2, label);
            return;
        }
        if (m == "jmp") {
            need(1);
            builder_.jmp(parseTarget(line, ops[0]));
            return;
        }
        syntaxError(line, "unknown mnemonic '" + m + "'");
    }

    std::vector<SourceLine> lines_;
    ProgramBuilder builder_;
    std::map<std::string, Addr> *symbols_ = nullptr;
    std::map<std::string, unsigned> labelIndex_;
    std::map<unsigned, int> labelForIndex_;
    std::set<unsigned> bound_;
    unsigned instructionCount_ = 0;
};

} // namespace

Program
Assembler::assemble(const std::string &source)
{
    std::map<std::string, Addr> symbols;
    return assemble(source, symbols);
}

Program
Assembler::assemble(const std::string &source,
                    std::map<std::string, Addr> &symbols)
{
    Parser parser(source);
    return parser.emit(symbols);
}

} // namespace unxpec
