/**
 * @file
 * Program container and assembler-style builder. Attack code, victim
 * code, and synthetic workloads are all constructed through
 * ProgramBuilder: it provides labels, a bump allocator for data arrays,
 * and initial-data images applied to main memory before a run.
 */

#ifndef UNXPEC_CPU_PROGRAM_HH
#define UNXPEC_CPU_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/isa.hh"
#include "sim/types.hh"

namespace unxpec {

class MainMemory;

/** A fully assembled program. */
class Program
{
  public:
    /** Base address of the code image (for I-cache modeling). */
    static constexpr Addr kCodeBase = 0x00400000;
    /** Bytes per instruction in the code image. */
    static constexpr unsigned kInstBytes = 4;

    const std::vector<Instruction> &code() const { return code_; }
    const Instruction &at(std::size_t pc) const { return code_[pc]; }
    std::size_t size() const { return code_.size(); }

    /** Fetch address of an instruction index. */
    static Addr pcToAddr(std::size_t pc)
    {
        return kCodeBase + pc * kInstBytes;
    }

    /** Apply all initial-data images to main memory. */
    void loadInitialData(MainMemory &mem) const;

    /** Multi-line disassembly listing. */
    std::string listing() const;

  private:
    friend class ProgramBuilder;

    struct DataInit
    {
        Addr addr;
        std::vector<std::uint8_t> bytes;
    };

    std::vector<Instruction> code_;
    std::vector<DataInit> inits_;
};

/** Incremental builder with labels and data allocation. */
class ProgramBuilder
{
  public:
    ProgramBuilder();

    // ---- data segment ----------------------------------------------
    /** Allocate `bytes` of data, line-aligned by default. */
    Addr alloc(std::size_t bytes, std::size_t align = kLineBytes);

    /** Set initial bytes at an address. */
    void initBytes(Addr addr, const std::vector<std::uint8_t> &bytes);
    void initByte(Addr addr, std::uint8_t value);
    void initWord64(Addr addr, std::uint64_t value);

    // ---- labels ------------------------------------------------------
    /** Create a new unbound label. */
    int label();
    /** Bind a label to the next emitted instruction. */
    void bind(int label_id);

    // ---- instruction emitters ---------------------------------------
    void nop();
    void halt();
    void li(RegIndex rd, std::int64_t value);
    void mov(RegIndex rd, RegIndex rs);
    void add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void addi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void shl(RegIndex rd, RegIndex rs1, unsigned amount);
    void shr(RegIndex rd, RegIndex rs1, unsigned amount);
    void load(RegIndex rd, RegIndex rs1, std::int64_t imm = 0,
              unsigned size = 8);
    void store(RegIndex rs1, std::int64_t imm, RegIndex value_reg,
               unsigned size = 8);
    void blt(RegIndex rs1, RegIndex rs2, int label_id);
    void bge(RegIndex rs1, RegIndex rs2, int label_id);
    void beq(RegIndex rs1, RegIndex rs2, int label_id);
    void bne(RegIndex rs1, RegIndex rs2, int label_id);
    void jmp(int label_id);
    void clflush(RegIndex rs1, std::int64_t imm = 0);
    void fence();
    void rdtscp(RegIndex rd);

    /** Current instruction index (next emit position). */
    std::size_t here() const { return code_.size(); }

    /** Patch labels and produce the program. All labels must be bound. */
    Program build();

  private:
    void emit(Instruction inst, int label_id = -1);

    std::vector<Instruction> code_;
    std::vector<int> pendingLabel_; //!< per-instruction label or -1
    std::vector<std::int32_t> labelTargets_;
    std::vector<Program::DataInit> inits_;
    Addr dataBreak_;
};

} // namespace unxpec

#endif // UNXPEC_CPU_PROGRAM_HH
