#include "cpu/rob.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/trace.hh"

namespace unxpec {

namespace {

/** Lifecycle instant through the ROB's tracer, if one is attached. */
inline void
traceLifecycle(Tracer *tracer, TraceKind kind, const RobEntry &entry)
{
    if (kTraceEnabled && tracer != nullptr &&
        tracer->enabled(kTraceCatCpu)) {
        tracer->instant(kind, entry.seq, kAddrInvalid, entry.pc);
    }
}

} // namespace

RobEntry &
ReorderBuffer::push(RobEntry entry)
{
    if (full())
        panic("ReorderBuffer::push on full ROB");
    if (!entries_.empty() && entry.seq != entries_.back().seq + 1)
        panic("ReorderBuffer::push: non-consecutive sequence number");

    // Entries arrive in ascending seq order, so plain appends keep
    // every side list sorted. Instructions that complete at dispatch
    // (NOP/HALT/JMP) arrive already issued+done and join no list.
    if (!entry.issued)
        unissued_.push_back(entry.seq);
    else if (!entry.done)
        outstanding_.push_back(entry.seq);
    const Opcode op = entry.inst.op;
    if (isMem(op)) {
        ++memCount_;
        if (!entry.done)
            pendingMem_.push_back(entry.seq);
    }
    if (isStore(op) || op == Opcode::FENCE)
        storeFences_.push_back(entry.seq);
    if (isCondBranch(op) && !entry.done)
        unresolvedBranches_.push_back(entry.seq);

    entries_.push_back(std::move(entry));
    traceLifecycle(tracer_, TraceKind::Dispatch, entries_.back());
    return entries_.back();
}

void
ReorderBuffer::popFront()
{
    const RobEntry &head = entries_.front();
    const Opcode op = head.inst.op;
    // Commit retires only done entries, so the pending/unissued/
    // outstanding lists cannot contain the head; the all-stores list
    // and the mem count can.
    if (isMem(op))
        --memCount_;
    if (!storeFences_.empty() && storeFences_.front() == head.seq)
        storeFences_.erase(storeFences_.begin());
    traceLifecycle(tracer_, TraceKind::Commit, head);
    entries_.pop_front();
}

void
ReorderBuffer::markIssued(RobEntry &entry)
{
    entry.issued = true;
    eraseSeq(unissued_, entry.seq);
    if (!entry.done) {
        const auto it = std::lower_bound(outstanding_.begin(),
                                         outstanding_.end(), entry.seq);
        outstanding_.insert(it, entry.seq);
    }
    traceLifecycle(tracer_, TraceKind::Issue, entry);
}

void
ReorderBuffer::markDone(RobEntry &entry)
{
    entry.done = true;
    eraseSeq(outstanding_, entry.seq);
    if (isMem(entry.inst.op))
        eraseSeq(pendingMem_, entry.seq);
    if (isCondBranch(entry.inst.op))
        eraseSeq(unresolvedBranches_, entry.seq);
    traceLifecycle(tracer_, TraceKind::Writeback, entry);
}

std::vector<RobEntry>
ReorderBuffer::squashYoungerThan(SeqNum seq)
{
    std::vector<RobEntry> squashed;
    while (!entries_.empty() && entries_.back().seq > seq) {
        if (isMem(entries_.back().inst.op))
            --memCount_;
        squashed.push_back(std::move(entries_.back()));
        entries_.pop_back();
    }
    trimYoungerThan(unissued_, seq);
    trimYoungerThan(outstanding_, seq);
    trimYoungerThan(storeFences_, seq);
    trimYoungerThan(pendingMem_, seq);
    trimYoungerThan(unresolvedBranches_, seq);
    // Return them oldest-first for readability downstream.
    std::reverse(squashed.begin(), squashed.end());
    for (const RobEntry &entry : squashed)
        traceLifecycle(tracer_, TraceKind::Squash, entry);
    return squashed;
}

void
ReorderBuffer::clear()
{
    entries_.clear();
    unissued_.clear();
    outstanding_.clear();
    storeFences_.clear();
    pendingMem_.clear();
    unresolvedBranches_.clear();
    memCount_ = 0;
}

} // namespace unxpec
