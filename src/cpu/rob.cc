#include "cpu/rob.hh"

#include <algorithm>

#include "sim/log.hh"

namespace unxpec {

RobEntry &
ReorderBuffer::push(RobEntry entry)
{
    if (full())
        panic("ReorderBuffer::push on full ROB");
    if (!entries_.empty() && entry.seq != entries_.back().seq + 1)
        panic("ReorderBuffer::push: non-consecutive sequence number");
    entries_.push_back(std::move(entry));
    return entries_.back();
}

RobEntry *
ReorderBuffer::find(SeqNum seq)
{
    if (entries_.empty() || seq < entries_.front().seq ||
        seq > entries_.back().seq) {
        return nullptr;
    }
    return &entries_[seq - entries_.front().seq];
}

const RobEntry *
ReorderBuffer::find(SeqNum seq) const
{
    return const_cast<ReorderBuffer *>(this)->find(seq);
}

std::vector<RobEntry>
ReorderBuffer::squashYoungerThan(SeqNum seq)
{
    std::vector<RobEntry> squashed;
    while (!entries_.empty() && entries_.back().seq > seq) {
        squashed.push_back(std::move(entries_.back()));
        entries_.pop_back();
    }
    // Return them oldest-first for readability downstream.
    std::reverse(squashed.begin(), squashed.end());
    return squashed;
}

bool
ReorderBuffer::olderUnresolvedBranch(SeqNum seq) const
{
    for (const auto &entry : entries_) {
        if (entry.seq >= seq)
            break;
        if (isCondBranch(entry.inst.op) && !entry.done)
            return true;
    }
    return false;
}

} // namespace unxpec
