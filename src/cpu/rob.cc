#include "cpu/rob.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/trace.hh"

namespace unxpec {

namespace {

/** Lifecycle instant through the ROB's tracer, if one is attached. */
inline void
traceLifecycle(Tracer *tracer, TraceKind kind, const RobEntry &entry)
{
    if (kTraceEnabled && tracer != nullptr &&
        tracer->enabled(kTraceCatCpu)) {
        tracer->instant(kind, entry.seq, kAddrInvalid, entry.pc);
    }
}

} // namespace

RobEntry &
ReorderBuffer::push(RobEntry entry)
{
    if (full())
        panic("ReorderBuffer::push on full ROB");
    if (!entries_.empty() && entry.seq != entries_.back().seq + 1)
        panic("ReorderBuffer::push: non-consecutive sequence number");

    // This entry now owns ring slot seq % capacity: clear whatever
    // dependent bits a squashed or committed former occupant left in
    // the slot's producer row.
    std::fill_n(depMask_.begin() +
                    (entry.seq % capacity_) * maskWords_,
                maskWords_, 0);

    // Entries arrive in ascending seq order, so plain appends keep
    // every side list sorted. Instructions that complete at dispatch
    // (NOP/HALT/JMP) arrive already issued+done and join no list.
    // Every list is reserved to ROB capacity, which bounds its size.
    if (!entry.issued) {
        unissued_.push_back(entry.seq); // lint-ok(steady-alloc): reserved
        if (entry.srcReady[0] && entry.srcReady[1])
            // lint-ok(steady-alloc): reserved
            readyUnissued_.push_back(entry.seq);
        else
            registerDependents(entry);
    } else if (!entry.done)
        outstanding_.push_back(entry.seq); // lint-ok(steady-alloc): reserved
    const Opcode op = entry.inst.op;
    if (isMem(op)) {
        ++memCount_;
        if (!entry.done)
            pendingMem_.push_back(entry.seq); // lint-ok(steady-alloc): reserved
    }
    if (isStore(op) || op == Opcode::FENCE)
        storeFences_.push_back(entry.seq); // lint-ok(steady-alloc): reserved
    if (isCondBranch(op) && !entry.done)
        // lint-ok(steady-alloc): reserved
        unresolvedBranches_.push_back(entry.seq);

    entries_.push_back(std::move(entry)); // lint-ok(steady-alloc): ring
    traceLifecycle(tracer_, TraceKind::Dispatch, entries_.back());
    return entries_.back();
}

void
ReorderBuffer::popFront()
{
    const RobEntry &head = entries_.front();
    const Opcode op = head.inst.op;
    // Commit retires only done entries, so the pending/unissued/
    // outstanding lists cannot contain the head; the all-stores list
    // and the mem count can.
    if (isMem(op))
        --memCount_;
    if (!storeFences_.empty() && storeFences_.front() == head.seq)
        storeFences_.erase(storeFences_.begin());
    traceLifecycle(tracer_, TraceKind::Commit, head);
    entries_.pop_front();
}

void
ReorderBuffer::markIssued(RobEntry &entry)
{
    entry.issued = true;
    eraseSeq(unissued_, entry.seq);
    eraseSeq(readyUnissued_, entry.seq);
    if (!entry.done) {
        const auto it = std::lower_bound(outstanding_.begin(),
                                         outstanding_.end(), entry.seq);
        outstanding_.insert(it, entry.seq); // lint-ok(steady-alloc): reserved
    }
    traceLifecycle(tracer_, TraceKind::Issue, entry);
}

void
ReorderBuffer::markDone(RobEntry &entry)
{
    entry.done = true;
    eraseSeq(outstanding_, entry.seq);
    if (isMem(entry.inst.op))
        eraseSeq(pendingMem_, entry.seq);
    if (isCondBranch(entry.inst.op))
        eraseSeq(unresolvedBranches_, entry.seq);
    wakeDependents(entry);
    traceLifecycle(tracer_, TraceKind::Writeback, entry);
}

void
ReorderBuffer::registerDependents(const RobEntry &entry)
{
    const std::size_t consumer_slot = entry.seq % capacity_;
    for (unsigned slot = 0; slot < 2; ++slot) {
        if (entry.srcReady[slot])
            continue;
        // The producer is live and not done (dispatch captures done
        // producers' values directly), so its row is current.
        const std::size_t row =
            (entry.producer[slot] % capacity_) * maskWords_;
        depMask_[row + consumer_slot / 64] |=
            std::uint64_t{1} << (consumer_slot % 64);
    }
}

void
ReorderBuffer::wakeDependents(const RobEntry &producer)
{
    const std::size_t row = (producer.seq % capacity_) * maskWords_;
    for (std::size_t w = 0; w < maskWords_; ++w) {
        std::uint64_t bits = depMask_[row + w];
        if (bits == 0)
            continue;
        depMask_[row + w] = 0;
        while (bits != 0) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            wakeSlot(w * 64 + bit, producer);
        }
    }
}

void
ReorderBuffer::wakeSlot(std::size_t slot, const RobEntry &producer)
{
    if (entries_.empty())
        return;
    // Recover the live seq occupying this ring slot; a squashed
    // consumer leaves a stale bit pointing at a dead (or reused) slot.
    const SeqNum front = entries_.front().seq;
    const std::size_t offset =
        (slot + capacity_ - front % capacity_) % capacity_;
    if (offset >= entries_.size())
        return;
    RobEntry &consumer = entries_[offset];
    bool woke = false;
    for (unsigned s = 0; s < 2; ++s) {
        if (!consumer.srcReady[s] &&
            consumer.producer[s] == producer.seq) {
            consumer.srcValue[s] = producer.result;
            consumer.srcReady[s] = true;
            woke = true;
        }
    }
    if (woke && consumer.srcReady[0] && consumer.srcReady[1] &&
        !consumer.issued) {
        const auto it = std::lower_bound(readyUnissued_.begin(),
                                         readyUnissued_.end(),
                                         consumer.seq);
        // lint-ok(steady-alloc): reserved
        readyUnissued_.insert(it, consumer.seq);
    }
}

const ArenaVector<RobEntry> &
ReorderBuffer::squashYoungerThan(SeqNum seq)
{
    // Reuse the scratch buffer (reserved to ROB capacity at
    // construction): the squash path runs once per misprediction and
    // must stay allocation-free.
    squashScratch_.clear();
    while (!entries_.empty() && entries_.back().seq > seq) {
        if (isMem(entries_.back().inst.op))
            --memCount_;
        // lint-ok(steady-alloc): reserved
        squashScratch_.push_back(std::move(entries_.back()));
        entries_.pop_back();
    }
    trimYoungerThan(unissued_, seq);
    trimYoungerThan(readyUnissued_, seq);
    trimYoungerThan(outstanding_, seq);
    trimYoungerThan(storeFences_, seq);
    trimYoungerThan(pendingMem_, seq);
    trimYoungerThan(unresolvedBranches_, seq);
    // Return them oldest-first for readability downstream.
    std::reverse(squashScratch_.begin(), squashScratch_.end());
    for (const RobEntry &entry : squashScratch_)
        traceLifecycle(tracer_, TraceKind::Squash, entry);
    return squashScratch_;
}

void
ReorderBuffer::clear()
{
    entries_.clear();
    unissued_.clear();
    outstanding_.clear();
    storeFences_.clear();
    pendingMem_.clear();
    unresolvedBranches_.clear();
    squashScratch_.clear();
    readyUnissued_.clear();
    std::fill(depMask_.begin(), depMask_.end(), 0);
    memCount_ = 0;
}

} // namespace unxpec
