/**
 * @file
 * The simulator's mini-ISA: a 32-register load/store machine with just
 * enough surface to express the paper's attack code — dependent loads
 * for f(N) branch conditions, conditional branches to mistrain and
 * mis-speculate, `clflush`, a memory fence, and `rdtscp`.
 */

#ifndef UNXPEC_CPU_ISA_HH
#define UNXPEC_CPU_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace unxpec {

/** Number of architectural registers. */
inline constexpr unsigned kNumRegs = 32;

/** Operation codes. */
enum class Opcode : std::uint8_t
{
    NOP,
    HALT,    //!< stop the program at commit
    LI,      //!< rd = imm
    MOV,     //!< rd = rs1
    ADD,     //!< rd = rs1 + rs2
    ADDI,    //!< rd = rs1 + imm
    SUB,     //!< rd = rs1 - rs2
    MUL,     //!< rd = rs1 * rs2
    AND,     //!< rd = rs1 & rs2
    OR,      //!< rd = rs1 | rs2
    XOR,     //!< rd = rs1 ^ rs2
    SHL,     //!< rd = rs1 << imm
    SHR,     //!< rd = rs1 >> imm
    LOAD,    //!< rd = mem[rs1 + imm]  (size bytes, zero-extended)
    STORE,   //!< mem[rs1 + imm] = rs2 (size bytes)
    BLT,     //!< branch to target when rs1 < rs2 (signed)
    BGE,     //!< branch to target when rs1 >= rs2 (signed)
    BEQ,     //!< branch to target when rs1 == rs2
    BNE,     //!< branch to target when rs1 != rs2
    JMP,     //!< unconditional branch to target
    CLFLUSH, //!< flush line of mem[rs1 + imm] from the whole hierarchy
    FENCE,   //!< complete all older memory operations first
    RDTSCP,  //!< rd = current cycle; waits for all older instructions
};

/** A decoded instruction. PCs are instruction indices into the program. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    std::int64_t imm = 0;
    std::int32_t target = 0; //!< branch/jump destination (instruction index)
    std::uint8_t size = 8;   //!< memory access size in bytes
};

/** Classification helpers. */
bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isMem(Opcode op);          //!< load, store, clflush, or fence
bool isCondBranch(Opcode op);
bool isBranch(Opcode op);       //!< conditional or JMP
bool writesReg(Opcode op);
bool readsRs1(Opcode op);
bool readsRs2(Opcode op);

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Disassemble one instruction. */
std::string disassemble(const Instruction &inst);

} // namespace unxpec

#endif // UNXPEC_CPU_ISA_HH
