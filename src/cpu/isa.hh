/**
 * @file
 * The simulator's mini-ISA: a 32-register load/store machine with just
 * enough surface to express the paper's attack code — dependent loads
 * for f(N) branch conditions, conditional branches to mistrain and
 * mis-speculate, `clflush`, a memory fence, and `rdtscp`.
 */

#ifndef UNXPEC_CPU_ISA_HH
#define UNXPEC_CPU_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace unxpec {

/** Number of architectural registers. */
inline constexpr unsigned kNumRegs = 32;

/** Operation codes. */
enum class Opcode : std::uint8_t
{
    NOP,
    HALT,    //!< stop the program at commit
    LI,      //!< rd = imm
    MOV,     //!< rd = rs1
    ADD,     //!< rd = rs1 + rs2
    ADDI,    //!< rd = rs1 + imm
    SUB,     //!< rd = rs1 - rs2
    MUL,     //!< rd = rs1 * rs2
    AND,     //!< rd = rs1 & rs2
    OR,      //!< rd = rs1 | rs2
    XOR,     //!< rd = rs1 ^ rs2
    SHL,     //!< rd = rs1 << imm
    SHR,     //!< rd = rs1 >> imm
    LOAD,    //!< rd = mem[rs1 + imm]  (size bytes, zero-extended)
    STORE,   //!< mem[rs1 + imm] = rs2 (size bytes)
    BLT,     //!< branch to target when rs1 < rs2 (signed)
    BGE,     //!< branch to target when rs1 >= rs2 (signed)
    BEQ,     //!< branch to target when rs1 == rs2
    BNE,     //!< branch to target when rs1 != rs2
    JMP,     //!< unconditional branch to target
    CLFLUSH, //!< flush line of mem[rs1 + imm] from the whole hierarchy
    FENCE,   //!< complete all older memory operations first
    RDTSCP,  //!< rd = current cycle; waits for all older instructions
};

/** A decoded instruction. PCs are instruction indices into the program. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    std::int64_t imm = 0;
    std::int32_t target = 0; //!< branch/jump destination (instruction index)
    std::uint8_t size = 8;   //!< memory access size in bytes
};

// Classification helpers. These run in the core's per-cycle ROB scans
// (issue, writeback, load gating) tens of millions of times per
// simulated second, so each is an inline single-instruction bit test
// against a constexpr opcode-class mask.

namespace detail {
/** Bit set of opcodes, indexed by the Opcode's underlying value. */
template <typename... Ops>
constexpr std::uint32_t
opcodeMask(Ops... ops)
{
    return ((1u << static_cast<unsigned>(ops)) | ... | 0u);
}

inline constexpr std::uint32_t kMemMask =
    opcodeMask(Opcode::LOAD, Opcode::STORE, Opcode::CLFLUSH, Opcode::FENCE);
inline constexpr std::uint32_t kCondBranchMask =
    opcodeMask(Opcode::BLT, Opcode::BGE, Opcode::BEQ, Opcode::BNE);
inline constexpr std::uint32_t kWritesRegMask = opcodeMask(
    Opcode::LI, Opcode::MOV, Opcode::ADD, Opcode::ADDI, Opcode::SUB,
    Opcode::MUL, Opcode::AND, Opcode::OR, Opcode::XOR, Opcode::SHL,
    Opcode::SHR, Opcode::LOAD, Opcode::RDTSCP);
inline constexpr std::uint32_t kReadsRs1Mask = opcodeMask(
    Opcode::MOV, Opcode::ADD, Opcode::ADDI, Opcode::SUB, Opcode::MUL,
    Opcode::AND, Opcode::OR, Opcode::XOR, Opcode::SHL, Opcode::SHR,
    Opcode::LOAD, Opcode::STORE, Opcode::BLT, Opcode::BGE, Opcode::BEQ,
    Opcode::BNE, Opcode::CLFLUSH);
inline constexpr std::uint32_t kReadsRs2Mask = opcodeMask(
    Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::AND, Opcode::OR,
    Opcode::XOR, Opcode::STORE, Opcode::BLT, Opcode::BGE, Opcode::BEQ,
    Opcode::BNE);

inline constexpr bool
inMask(std::uint32_t mask, Opcode op)
{
    return (mask >> static_cast<unsigned>(op)) & 1u;
}
} // namespace detail

inline constexpr bool isLoad(Opcode op) { return op == Opcode::LOAD; }
inline constexpr bool isStore(Opcode op) { return op == Opcode::STORE; }
/** Load, store, clflush, or fence. */
inline constexpr bool
isMem(Opcode op)
{
    return detail::inMask(detail::kMemMask, op);
}
inline constexpr bool
isCondBranch(Opcode op)
{
    return detail::inMask(detail::kCondBranchMask, op);
}
/** Conditional or JMP. */
inline constexpr bool
isBranch(Opcode op)
{
    return isCondBranch(op) || op == Opcode::JMP;
}
inline constexpr bool
writesReg(Opcode op)
{
    return detail::inMask(detail::kWritesRegMask, op);
}
inline constexpr bool
readsRs1(Opcode op)
{
    return detail::inMask(detail::kReadsRs1Mask, op);
}
inline constexpr bool
readsRs2(Opcode op)
{
    return detail::inMask(detail::kReadsRs2Mask, op);
}

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Disassemble one instruction. */
std::string disassemble(const Instruction &inst);

} // namespace unxpec

#endif // UNXPEC_CPU_ISA_HH
