#include "cpu/branch_predictor.hh"

#include <algorithm>

namespace unxpec {

BimodalPredictor::BimodalPredictor(unsigned table_bits)
    : tableBits_(table_bits),
      counters_(1u << table_bits, 1) // weakly not-taken
{
}

unsigned
BimodalPredictor::index(std::uint64_t pc) const
{
    return static_cast<unsigned>(pc & ((1u << tableBits_) - 1));
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return counters_[index(pc)] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = counters_[index(pc)];
    if (taken)
        counter = std::min<std::uint8_t>(3, counter + 1);
    else
        counter = counter > 0 ? counter - 1 : 0;
}

void
BimodalPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
}

GsharePredictor::GsharePredictor(unsigned table_bits, unsigned history_bits)
    : tableBits_(table_bits),
      historyBits_(history_bits),
      counters_(1u << table_bits, 1)
{
}

unsigned
GsharePredictor::index(std::uint64_t pc) const
{
    const std::uint64_t mask = (1u << tableBits_) - 1;
    const std::uint64_t hist = history_ & ((1u << historyBits_) - 1);
    return static_cast<unsigned>((pc ^ hist) & mask);
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return counters_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = counters_[index(pc)];
    if (taken)
        counter = std::min<std::uint8_t>(3, counter + 1);
    else
        counter = counter > 0 ? counter - 1 : 0;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
    history_ = 0;
}

} // namespace unxpec
