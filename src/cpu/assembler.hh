/**
 * @file
 * Text assembler for the mini-ISA. Accepts the same syntax
 * Program::listing() emits (plus labels and data directives), so
 * programs round-trip between text and the builder. Attack variants
 * and test kernels can be written as plain assembly strings:
 *
 *     .data buf 64            ; allocate 64 line-aligned bytes
 *     .word buf 0 1234        ; initialize buf+0 with a 64-bit word
 *         li r1, buf
 *     loop:
 *         load8 r2, [r1+0]
 *         addi r2, r2, 1
 *         store8 [r1+0], r2
 *         blt r2, r3, loop
 *         halt
 *
 * Comments run from ';' or '#' to end of line. Immediates accept
 * decimal and 0x-hex; `.data` symbols may be used as immediates.
 */

#ifndef UNXPEC_CPU_ASSEMBLER_HH
#define UNXPEC_CPU_ASSEMBLER_HH

#include <map>
#include <string>

#include "cpu/program.hh"

namespace unxpec {

/** Parses assembly text into a Program. */
class Assembler
{
  public:
    /** Assemble `source`; fatal() with a line number on syntax errors. */
    static Program assemble(const std::string &source);

    /**
     * Assemble and also return the data-symbol table (symbol ->
     * allocated address), for harnesses that must poke program data.
     */
    static Program assemble(const std::string &source,
                            std::map<std::string, Addr> &symbols);
};

} // namespace unxpec

#endif // UNXPEC_CPU_ASSEMBLER_HH
