/**
 * @file
 * Cycle-stepped out-of-order core in the mold of gem5's O3: speculative
 * fetch down the predicted path, register renaming onto ROB tags,
 * out-of-order issue with load/store discipline, in-order commit, and
 * squash-on-mispredict that hands the transient memory footprint to
 * the CleanupSpec rollback engine.
 *
 * Microarchitectural state (caches, predictor, cleanup stats) persists
 * across run() calls, modeling the paper's attacker: sender and
 * receiver share one thread and run round after round on a warm
 * machine. Architectural state (registers, PC) resets per run.
 */

#ifndef UNXPEC_CPU_CORE_HH
#define UNXPEC_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cleanup/cleanup_engine.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/lsq.hh"
#include "cpu/program.hh"
#include "cpu/rob.hh"
#include "memory/hierarchy.hh"
#include "sim/annotate.hh"
#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/ring_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace unxpec {

class Core;
class Tracer;

/**
 * Hook that takes over the stepping of a run (BatchRunner's lock-step
 * batching). When installed via Core::setRunYield, Core::run latches
 * the run with runBegin() and then calls driveRun() instead of its own
 * step loop; the driver must call core.runStep() until it returns
 * false (interleaving steps of other cores as it pleases) and then
 * return, after which run() produces the RunResult via runFinish().
 * Because trials are fully independent, any interleaving yields
 * results bit-identical to the inline loop.
 */
class RunYield
{
  public:
    virtual ~RunYield() = default;

    /** Step `core` (runStep until false), yielding between steps. */
    virtual void driveRun(Core &core) = 0;
};

/** Options for one program execution. */
struct RunOptions
{
    /** Stop after committing this many instructions (HALT also stops). */
    std::uint64_t maxInstructions = UINT64_MAX;
    /** Record the cycle at which this many instructions had committed
     *  (the artifact's system.cpu.fetch.startCycles). */
    std::uint64_t warmupInstructions = 0;
    /** Cold-start caches and predictor before running. */
    bool resetMicroarch = false;
    /** Apply the program's initial data image to memory first. */
    bool loadData = true;
    /**
     * Safety valve against runaway programs (infinite loops, missing
     * HALT). When the budget trips, run() warns with the committed
     * instruction count and sets RunResult::cycleLimitReached so
     * callers can tell a partial result from a finished one.
     */
    static constexpr std::uint64_t kDefaultMaxCycles = 1ull << 32;
    std::uint64_t maxCycles = kDefaultMaxCycles;
};

/** Outcome of one program execution. */
struct RunResult
{
    Cycle cycles = 0;             //!< sim_ticks for this run
    std::uint64_t instructions = 0;
    Cycle warmupCycles = 0;       //!< cycle at warmupInstructions commits
    bool halted = false;
    /** RunOptions::maxCycles tripped: the result is partial. */
    bool cycleLimitReached = false;
    std::array<std::uint64_t, kNumRegs> regs{};

    std::uint64_t reg(RegIndex index) const { return regs[index]; }
};

/** Single out-of-order core plus its memory hierarchy. */
class Core
{
  public:
    explicit Core(const SystemConfig &cfg);

    // The hierarchy and cleanup engine hold references into this
    // object; copying or moving would leave them dangling.
    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Execute a program to completion (HALT or instruction budget). */
    RunResult run(const Program &program, const RunOptions &options = {});

    /**
     * Stepped execution for the Machine scheduler: runBegin() latches
     * the program and per-run state, each runStep() advances exactly
     * one cycle (returning false once the run is over), and
     * runFinish() produces the RunResult. run() is exactly
     * runBegin + runStep-until-false + runFinish, so single-core
     * behavior is identical whichever driver is used.
     */
    void runBegin(const Program &program, const RunOptions &options = {});
    bool runStep();
    RunResult runFinish();
    /** True between runBegin() and runFinish(). */
    bool runActive() const { return runActive_; }

    /**
     * Clock sync for interleaved multi-core scheduling: lift this
     * core's monotonic cycle counter to `cycle` (never backwards).
     * Idle cycles spent waiting for other cores do not count as
     * sim_ticks.
     */
    void advanceTo(Cycle cycle);

    /**
     * Restore freshly-constructed state for a new seed without
     * reallocating caches, ROB, or memory pages: bit-identical to
     * constructing Core(cfg) with cfg.seed == seed, but allocation-free
     * so a pooled Core can be reused across trials (TrialRunner).
     */
    UNXPEC_TRANSITION("reset")
    void reset(std::uint64_t seed);

    MemoryHierarchy &hierarchy() { return hier_; }
    BranchPredictor &predictor() { return *predictor_; }
    CleanupEngine &cleanup() { return cleanup_; }
    MainMemory &mem() { return hier_.mem(); }
    Rng &rng() { return rng_; }
    StatGroup &stats() { return stats_; }
    const SystemConfig &config() const { return cfg_; }

    /** Global cycle counter (monotonic across runs). */
    Cycle now() const { return now_; }

    /**
     * Whole-trial simulated-cycle watchdog: a budget shared by every
     * subsequent run() call. Each run consumes its cycles from the
     * budget and trips RunResult::cycleLimitReached (and the
     * limitTripped() latch) once it is exhausted, so a wedged trial is
     * bounded no matter how many run() rounds it issues. 0 disables.
     * Core::reset clears the budget along with the latch.
     */
    void setCycleBudget(std::uint64_t cycles);
    /** Remaining cycles of the trial budget (0 when none set). */
    std::uint64_t cycleBudgetRemaining() const { return budgetRemaining_; }

    /**
     * True when any run() since construction/reset stopped on a cycle
     * limit (the per-run RunOptions::maxCycles safety valve or the
     * trial budget): the metrics computed from those runs are
     * truncated, and the harness marks the trial *censored* instead of
     * folding partial timings into aggregates.
     */
    bool limitTripped() const { return limitTripped_; }

    /**
     * Per-cycle probability of an external "interrupt" noise event and
     * its stall length; models other honest programs multiplexing the
     * core (§VI-D). Zero disables.
     */
    void setInterruptNoise(double per_cycle_probability,
                           unsigned min_stall, unsigned max_stall);

    /**
     * Commit trace: when set, every committed instruction emits one
     * line `cycle seq pc: disassembly [= result]`. nullptr disables.
     */
    void setTrace(std::ostream *trace) { trace_ = trace; }

    /**
     * Cycle-accurate event tracing (sim/trace.hh): attach a tracer to
     * this core and every instrumented component under it (ROB, memory
     * hierarchy, cleanup engine). nullptr detaches. The tracer must
     * outlive the core or be detached first; Core::reset detaches.
     */
    void setEventTrace(Tracer *tracer);
    Tracer *eventTrace() const { return eventTrace_; }

    /**
     * Install a run driver (BatchRunner lane): run() yields its step
     * loop to `yield->driveRun(*this)` so a scheduler can interleave
     * this core's cycles with other trials. nullptr restores the
     * inline loop; Core::reset also clears it.
     */
    void setRunYield(RunYield *yield) { runYield_ = yield; }
    RunYield *runYield() const { return runYield_; }

    /** Arena backing this core's per-trial hot state (stats/tests). */
    const Arena &arena() const { return arena_; }

    /**
     * Whole-machine invariant audit (sim/audit.hh): ROB side lists vs
     * a full scan, cache/MSHR layout coherence, and the LSQ occupancy
     * model. Throws AuditError on violation. The run loop calls this
     * every audit::period() cycles in UNXPEC_AUDIT builds; tests call
     * it directly in every build.
     */
    void auditInvariants() const;

  private:
    struct FetchedInst
    {
        std::size_t pc = 0;
        Instruction inst;
        bool predictedTaken = false;
        Cycle availCycle = 0;
    };

    UNXPEC_TRANSITION("spec")
    void tickWriteback(const Program &program);
    UNXPEC_TRANSITION("commit")
    void tickCommit();
    /** Issue stage: marks ROB entries speculative and launches the
     *  speculative memory accesses the defenses must later undo. */
    UNXPEC_TRANSITION("spec")
    void tickIssue();
    UNXPEC_TRANSITION("spec")
    void tickDispatch();
    void tickFetch(const Program &program);

    void resolveBranch(RobEntry &branch);
    UNXPEC_ROLLBACK("*")
    void squashAfter(RobEntry &branch);
    void rebuildRat();

    void executeEntry(RobEntry &entry);
    void commitStore(RobEntry &entry);

    // --- configuration and shared state -----------------------------
    SystemConfig cfg_;
    /**
     * Backs the per-trial hot state below (cache arrays, MSHRs, ROB
     * ring and side lists, decode queue): one contiguous allocation
     * per core instead of dozens of heap blocks. Declared before every
     * adopter so it is destroyed last; never reset while they live.
     */
    Arena arena_;
    Rng rng_;
    MemoryHierarchy hier_;
    std::unique_ptr<BranchPredictor> predictor_;
    CleanupEngine cleanup_;
    LoadStoreQueue lsq_;

    StatGroup stats_;
    Counter &simTicks_;
    Counter &committedInstrs_;
    Counter &branches_;
    Counter &mispredicts_;
    Counter &loads_;
    Counter &stores_;

    // --- per-run state -----------------------------------------------
    const Program *program_ = nullptr;
    std::array<std::uint64_t, kNumRegs> regs_{};
    std::array<SeqNum, kNumRegs> rat_{};
    ReorderBuffer rob_;
    RingQueue<FetchedInst> decodeQueue_;
    std::size_t fetchPC_ = 0;
    bool fetchStopped_ = false;
    Cycle fetchResumeCycle_ = 0;
    Cycle stallUntil_ = 0;
    Cycle commitStallUntil_ = 0; //!< InvisiSpec validation drain
    /** Non-pipelined multiplier busy window (core.mulPipelined=false);
     *  survives squashes — the SpectreRewind contention channel. */
    Cycle mulBusyUntil_ = 0;
    bool halted_ = false;
    SeqNum nextSeq_ = 0;
    std::uint64_t committed_ = 0;
    Cycle now_ = 0;

    // Noise injection.
    double interruptProb_ = 0.0;
    unsigned interruptMin_ = 0;
    unsigned interruptMax_ = 0;

    // Trial-level cycle watchdog (setCycleBudget).
    bool budgetSet_ = false;
    std::uint64_t budgetRemaining_ = 0;
    bool budgetWarned_ = false;
    bool limitTripped_ = false;

    // Stepped-execution state (runBegin/runStep/runFinish).
    RunOptions runOptions_;
    RunResult runResult_;
    Cycle runStart_ = 0;
    std::uint64_t runMaxCycles_ = 0;
    bool runBudgetBinding_ = false;
    bool runActive_ = false;

    // Squash scratch (reused per misprediction; capacity persists
    // after warm-up so the squash path stays allocation-free).
    std::vector<MemAccessRecord> squashRecords_;
    CleanupJob squashJob_;

    // Batched-execution driver (setRunYield).
    RunYield *runYield_ = nullptr;

    // Commit tracing.
    std::ostream *trace_ = nullptr;

    // Cycle-accurate event tracing.
    Tracer *eventTrace_ = nullptr;
};

} // namespace unxpec

#endif // UNXPEC_CPU_CORE_HH
