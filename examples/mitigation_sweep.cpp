/**
 * @file
 * Countermeasure exploration (paper §VI-E and §VII): sweep relaxed
 * constant-time rollback and the fuzzy dummy-cleanup mitigation, and
 * chart the security/performance trade-off: attack accuracy on one
 * axis, workload slowdown on the other.
 *
 *   $ ./mitigation_sweep
 */

#include <iostream>
#include <vector>

#include "analysis/table.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "sim/config.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

namespace {

/** Attack accuracy over `bits` random bits under a mitigation. */
double
attackAccuracy(const SystemConfig &base_cfg, unsigned bits)
{
    SystemConfig cfg = base_cfg;
    const NoiseProfile noise = NoiseProfile::evaluation();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecAttack attack(core, UnxpecConfig{});
    const double threshold = attack.calibrate(100);
    Rng rng(99);
    std::vector<int> secret;
    for (unsigned i = 0; i < bits; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    return attack.leak(secret, threshold).accuracy;
}

/** Mean slowdown of a small workload sample vs the unsafe baseline. */
double
workloadSlowdown(const SystemConfig &cfg)
{
    const std::vector<const char *> picks = {"mcf_r", "leela_r",
                                             "imagick_r"};
    RunOptions options;
    options.maxInstructions = 40000;
    options.warmupInstructions = 8000;

    double total = 0.0;
    for (const char *name : picks) {
        const Program p = SynthSpec::generate(SynthSpec::profile(name), 42);
        Core unsafe(SystemConfig::makeUnsafeBaseline());
        const RunResult base = unsafe.run(p, options);
        Core core(cfg);
        const RunResult run = core.run(p, options);
        total += static_cast<double>(run.cycles - run.warmupCycles) /
                 (base.cycles - base.warmupCycles);
    }
    return (total / picks.size() - 1.0) * 100.0;
}

} // namespace

int
main()
{
    std::cout << "=== Mitigation trade-off: accuracy vs overhead ===\n\n";
    TextTable table({"mitigation", "attack accuracy", "workload overhead"});

    const unsigned bits = 150;

    {
        const SystemConfig cfg = SystemConfig::makeDefault();
        table.addRow({"none (plain CleanupSpec)",
                      TextTable::num(attackAccuracy(cfg, bits) * 100) + "%",
                      TextTable::num(workloadSlowdown(cfg)) + "%"});
    }
    for (const unsigned constant : {25u, 45u, 65u}) {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupTiming.constantTimeCycles = constant;
        table.addRow({"constant-time " + std::to_string(constant) +
                          " cycles",
                      TextTable::num(attackAccuracy(cfg, bits) * 100) + "%",
                      TextTable::num(workloadSlowdown(cfg)) + "%"});
    }
    for (const unsigned fuzzy : {20u, 40u, 80u}) {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupTiming.fuzzyMaxCycles = fuzzy;
        table.addRow({"fuzzy dummy-cleanup <=" + std::to_string(fuzzy) +
                          " cycles",
                      TextTable::num(attackAccuracy(cfg, bits) * 100) + "%",
                      TextTable::num(workloadSlowdown(cfg)) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nReading: constant-time rollback closes the channel "
                 "(accuracy ~50 %) but costs 20-70 %\nperformance; the "
                 "paper's §VII fuzzy-cleanup idea degrades the attack at "
                 "a fraction of the cost\n(more samples per bit would "
                 "recover some accuracy — see §VI-D).\n";
    return 0;
}
