/**
 * @file
 * Countermeasure exploration (paper §VI-E and §VII): sweep relaxed
 * constant-time rollback and the fuzzy dummy-cleanup mitigation, and
 * chart the security/performance trade-off: attack accuracy on one
 * axis, workload slowdown on the other. Every mitigation is one
 * ExperimentSpec; the TrialRunner measures them in parallel.
 *
 *   $ ./mitigation_sweep [--reps N] [--threads T] [--json out]
 */

#include <iostream>
#include <vector>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "sim/rng.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

namespace {

/** Seed of the fixed random secret (same pattern as the seed bench). */
constexpr std::uint64_t kSecretSeed = 99;

constexpr unsigned kBits = 150;

/** Attack accuracy over kBits random bits under the spec's mitigation
 *  (evaluation noise, like the paper's §VI setting). */
double
attackAccuracy(const ExperimentSpec &spec, std::uint64_t seed)
{
    ExperimentSpec noisy = spec;
    noisy.noise = "evaluation";
    Session session(noisy, seed);
    UnxpecAttack &attack = session.unxpec();
    const double threshold = attack.calibrate(100);
    Rng rng(kSecretSeed);
    std::vector<int> secret;
    for (unsigned i = 0; i < kBits; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    return attack.leak(secret, threshold).accuracy;
}

/** Mean slowdown of a small workload sample vs the unsafe baseline. */
double
workloadSlowdown(const SystemConfig &cfg, std::uint64_t seed)
{
    const std::vector<const char *> picks = {"mcf_r", "leela_r",
                                             "imagick_r"};
    RunOptions options;
    options.maxInstructions = 40000;
    options.warmupInstructions = 8000;

    double total = 0.0;
    for (const char *name : picks) {
        const Program p = SynthSpec::generate(SynthSpec::profile(name), 42);
        SystemConfig base_cfg = makeDefense("unsafe");
        base_cfg.seed = seed;
        Core unsafe(base_cfg);
        const RunResult base = unsafe.run(p, options);
        SystemConfig run_cfg = cfg;
        run_cfg.seed = seed;
        Core core(run_cfg);
        const RunResult run = core.run(p, options);
        total += static_cast<double>(run.cycles - run.warmupCycles) /
                 (base.cycles - base.warmupCycles);
    }
    return (total / picks.size() - 1.0) * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("mitigation_sweep",
                   "Mitigation trade-off: attack accuracy vs workload "
                   "overhead per countermeasure");
    const HarnessOptions opt = cli.parse(argc, argv);

    std::vector<ExperimentSpec> specs;
    {
        ExperimentSpec spec = cli.baseSpec(opt);
        spec.label = "none (plain CleanupSpec)";
        specs.push_back(std::move(spec));
    }
    for (const unsigned constant : {25u, 45u, 65u}) {
        ExperimentSpec spec = cli.baseSpec(opt);
        spec.label = "constant-time " + std::to_string(constant) +
                     " cycles";
        spec.tweak = [constant](SystemConfig &cfg) {
            cfg.cleanupTiming.constantTimeCycles = constant;
        };
        spec.with("constant", constant);
        specs.push_back(std::move(spec));
    }
    for (const unsigned fuzzy : {20u, 40u, 80u}) {
        ExperimentSpec spec = cli.baseSpec(opt);
        spec.label = "fuzzy dummy-cleanup <=" + std::to_string(fuzzy) +
                     " cycles";
        spec.tweak = [fuzzy](SystemConfig &cfg) {
            cfg.cleanupTiming.fuzzyMaxCycles = fuzzy;
        };
        spec.with("fuzzy", fuzzy);
        specs.push_back(std::move(spec));
    }

    const ExperimentResult result = runExperiment(
        cli, opt, specs, [](const TrialContext &ctx) {
            TrialOutput out;
            out.metric("accuracy",
                       attackAccuracy(ctx.spec,
                                      Rng::deriveSeed(ctx.seed, 0)));
            out.metric("overhead_pct",
                       workloadSlowdown(
                           Session::configFor(ctx.spec,
                                              Rng::deriveSeed(ctx.seed, 1)),
                           Rng::deriveSeed(ctx.seed, 1)));
            return out;
        });

    std::cout << "=== Mitigation trade-off: accuracy vs overhead ===\n\n";
    TextTable table({"mitigation", "attack accuracy", "workload overhead"});
    for (const ResultRow &row : result.rows) {
        table.addRow({row.label,
                      TextTable::num(row.mean("accuracy") * 100) + "%",
                      TextTable::num(row.mean("overhead_pct")) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nReading: constant-time rollback closes the channel "
                 "(accuracy ~50 %) but costs 20-70 %\nperformance; the "
                 "paper's §VII fuzzy-cleanup idea degrades the attack at "
                 "a fraction of the cost\n(more samples per bit would "
                 "recover some accuracy — see §VI-D).\n";
    return finishExperiment(result, opt);
}
