/**
 * @file
 * Leak an ASCII message through the unXpec rollback-timing covert
 * channel, bit by bit, across the CleanupSpec "protection". This is
 * the paper's §VI-C experiment dressed up as the classic covert-
 * channel demo — and a tour of the harness: the message is split into
 * per-rep slices, each rep leaks its slice on its own Core (in
 * parallel across --threads), and the decode is reassembled in order.
 *
 *   $ ./covert_message [message] [--reps N] [--threads T] [--json out]
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/accuracy.hh"
#include "analysis/table.hh"
#include "attack/channel.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

namespace {

constexpr unsigned kSamplesPerBit = 3;
constexpr unsigned kCalibrationSamples = 200;

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("covert_message",
                   "Leak an ASCII message through the rollback-timing "
                   "covert channel");
    cli.defaultReps(4)
        .defaultNoise("evaluation")
        .textArg("message to leak", "unXpec breaks Undo!");
    const HarnessOptions opt = cli.parse(argc, argv);
    const std::string message = opt.text;

    // Eviction-set variant for the better accuracy, three samples per
    // bit with majority vote to push the error rate down.
    ExperimentSpec spec = cli.baseSpec(opt);
    spec.label = "message";
    spec.attack = "unxpec-evset";
    spec.with("chars", static_cast<double>(message.size()));

    // Each rep leaks a contiguous slice of characters on its own core.
    const unsigned chars = static_cast<unsigned>(message.size());
    const unsigned chunk = (chars + opt.reps - 1) / opt.reps;
    const ExperimentResult result = runExperiment(
        cli, opt, {spec}, [&message, chars, chunk](const TrialContext &ctx) {
            const unsigned begin = std::min(chars, ctx.rep * chunk);
            const unsigned end = std::min(chars, begin + chunk);
            TrialOutput out;
            if (begin == end)
                return out;

            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            const double threshold = attack.calibrate(kCalibrationSamples);
            out.metric("threshold", threshold);

            std::vector<double> bits;
            for (unsigned c = begin; c < end; ++c) {
                for (int bit = 7; bit >= 0; --bit) {
                    const int secret = (message[c] >> bit) & 1;
                    attack.setSecret(secret);
                    std::vector<double> samples;
                    for (unsigned s = 0; s < kSamplesPerBit; ++s)
                        samples.push_back(attack.measureOnce());
                    bits.push_back(CovertChannel::decodeMajority(
                        samples, threshold));
                }
            }
            out.samples("guess_bits", std::move(bits));
            out.metric("cycles_per_sample", attack.cyclesPerSample());
            return out;
        });

    const ResultRow &row = result.row(0);
    const std::vector<double> &bits = row.values("guess_bits");
    std::string received;
    unsigned bit_errors = 0;
    for (unsigned c = 0; c < chars; ++c) {
        int decoded = 0;
        for (int bit = 7; bit >= 0; --bit) {
            const int guess = static_cast<int>(bits[c * 8 + (7 - bit)]);
            bit_errors += guess != ((message[c] >> bit) & 1);
            decoded = (decoded << 1) | guess;
        }
        received.push_back(static_cast<char>(decoded));
        std::cout << "sent '" << message[c] << "' -> received '"
                  << static_cast<char>(decoded) << "'\n";
    }

    const unsigned total_bits = chars * 8;
    const double clock_ghz = makeDefense(result.mode).clockGHz;
    const double rate_kbps =
        LeakageRate::bitsPerSecond(row.mean("cycles_per_sample"),
                                   clock_ghz, kSamplesPerBit) /
        1000.0;

    std::cout << "\nmessage sent:     \"" << message << "\"\n";
    std::cout << "message received: \"" << received << "\"\n";
    std::cout << "bit errors: " << bit_errors << "/" << total_bits << " ("
              << TextTable::num(100.0 * (total_bits - bit_errors) /
                                total_bits)
              << " % accuracy)\n";
    std::cout << "effective rate at " << clock_ghz << " GHz with "
              << kSamplesPerBit << " samples/bit: "
              << TextTable::num(rate_kbps) << " Kbps\n";
    return finishExperiment(result, opt);
}
