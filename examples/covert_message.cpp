/**
 * @file
 * Leak an ASCII message through the unXpec rollback-timing covert
 * channel, bit by bit, across the CleanupSpec "protection". This is
 * the paper's §VI-C experiment dressed up as the classic covert-
 * channel demo.
 *
 *   $ ./covert_message [message]
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/accuracy.hh"
#include "analysis/table.hh"
#include "attack/channel.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    const std::string message =
        argc > 1 ? argv[1] : "unXpec breaks Undo!";

    // A lightly noisy CleanupSpec machine (the paper's §VI setting).
    SystemConfig cfg = SystemConfig::makeDefault();
    const NoiseProfile noise = NoiseProfile::evaluation();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    // Eviction-set variant for the better accuracy, three samples per
    // bit with majority vote to push the error rate down.
    UnxpecConfig ucfg;
    ucfg.useEvictionSets = true;
    UnxpecAttack attack(core, ucfg);

    std::cout << "calibrating the receiver threshold...\n";
    const double threshold = attack.calibrate(200);
    std::cout << "threshold: " << threshold << " cycles\n\n";

    const unsigned samples_per_bit = 3;
    std::string received;
    unsigned bit_errors = 0;

    for (const char ch : message) {
        int decoded = 0;
        for (int bit = 7; bit >= 0; --bit) {
            const int secret = (ch >> bit) & 1;
            attack.setSecret(secret);
            std::vector<double> samples;
            for (unsigned s = 0; s < samples_per_bit; ++s)
                samples.push_back(attack.measureOnce());
            const int guess =
                CovertChannel::decodeMajority(samples, threshold);
            bit_errors += guess != secret;
            decoded = (decoded << 1) | guess;
        }
        received.push_back(static_cast<char>(decoded));
        std::cout << "sent '" << ch << "' -> received '"
                  << static_cast<char>(decoded) << "'\n";
    }

    const unsigned total_bits =
        static_cast<unsigned>(message.size()) * 8;
    const double rate_kbps = LeakageRate::bitsPerSecond(
        attack.cyclesPerSample(), core.config().clockGHz,
        samples_per_bit) / 1000.0;

    std::cout << "\nmessage sent:     \"" << message << "\"\n";
    std::cout << "message received: \"" << received << "\"\n";
    std::cout << "bit errors: " << bit_errors << "/" << total_bits << " ("
              << TextTable::num(100.0 * (total_bits - bit_errors) /
                                total_bits)
              << " % accuracy)\n";
    std::cout << "effective rate at " << core.config().clockGHz
              << " GHz with " << samples_per_bit << " samples/bit: "
              << TextTable::num(rate_kbps) << " Kbps\n";
    return 0;
}
