/**
 * @file
 * The paper's story in one run: Spectre v1 with Flush+Reload leaks a
 * byte per round on the unsafe baseline; CleanupSpec's Undo rollback
 * defeats it; unXpec then re-opens a channel on the very same
 * CleanupSpec machine by timing the rollback itself. The defended
 * machine comes from the harness registry, so other schemes can be
 * auditioned for Acts 2 and 3:
 *
 *   $ ./spectre_vs_cleanup [--mode cleanup_full]
 */

#include <iostream>

#include "attack/channel.hh"
#include "attack/spectre_v1.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

namespace {

void
runSpectre(const char *label, const SystemConfig &cfg)
{
    Core core(cfg);
    SpectreV1 spectre(core);
    const std::uint8_t secret = 0x5A;
    spectre.setSecretByte(secret);
    const SpectreResult result = spectre.leakByte();
    std::cout << label << ": probe argmin = " << result.guessedByte
              << " at " << result.guessLatency << " cycles -> "
              << (result.cacheHitSignal
                      ? (result.guessedByte == secret
                             ? "LEAKED the secret byte 0x5A"
                             : "hit on wrong byte")
                      : "no cache hit, attack DEFEATED")
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("spectre_vs_cleanup",
                   "Spectre v1 vs CleanupSpec vs unXpec, in three acts");
    const HarnessOptions opt = cli.parse(argc, argv);
    ExperimentSpec spec = cli.baseSpec(opt);
    spec.attack = "unxpec-evset";

    std::cout << "--- Act 1: Spectre v1 vs the unprotected cache ---\n";
    runSpectre("unsafe baseline", makeDefense("unsafe"));

    std::cout << "\n--- Act 2: Spectre v1 vs " << spec.defense << " ---\n";
    runSpectre(spec.defense.c_str(), Session::configFor(spec, opt.seed));

    std::cout << "\n--- Act 3: unXpec vs the same " << spec.defense
              << " machine ---\n";
    Session session(spec, opt.seed);
    UnxpecAttack &attack = session.unxpec();
    const double threshold = attack.calibrate(6);

    const std::uint8_t secret = 0x5A;
    int recovered = 0;
    for (int bit = 7; bit >= 0; --bit) {
        attack.setSecret((secret >> bit) & 1);
        const double latency = attack.measureOnce();
        const int guess = CovertChannel::decode(latency, threshold);
        recovered = (recovered << 1) | guess;
        std::cout << "  bit " << bit << ": latency " << latency
                  << " cycles -> " << guess << "\n";
    }
    std::cout << "unXpec recovered byte 0x" << std::hex << recovered
              << std::dec
              << (recovered == secret ? "  -- secret LEAKED through the "
                                        "rollback timing channel"
                                      : "  -- decode failed")
              << "\n";

    std::cout << "\nModeration note: the rollback that erased Spectre's "
                 "footprint is itself the signal unXpec reads.\n";
    return 0;
}
