/**
 * @file
 * Command-line runner mirroring the paper artifact's `run.sh`
 * interface (Artifact Appendix E):
 *
 *   artifact_runner TimingDifference [-e]   # §VI-A (Figs 7/8)
 *   artifact_runner LeakageRate             # §VI-B
 *   artifact_runner SecretLeakage [-e]      # §VI-C (Figs 10/11)
 *   artifact_runner NoiseInsensitivity      # §VI-D (Fig 13)
 *   artifact_runner ConstantTime <benchmark> [maxinst] [startinst]
 *                                            # §VI-E (Fig 12, one row)
 *
 * Output follows the artifact's conventions: per-sample measurements
 * on stdout (the artifact logs lines 29-1028 of its .txt files; here
 * every line is a measurement), and gem5-style counters for the
 * ConstantTime runs (sim_ticks, startCycles,
 * extraCleanupSquashTimeCycles). Machines are built through the
 * harness session layer, the same one the bench/ figures use.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "analysis/accuracy.hh"
#include "attack/channel.hh"
#include "harness/session.hh"
#include "sim/rng.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

namespace {

constexpr std::uint64_t kSeed = 1;

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

ExperimentSpec
evaluationSpec(bool evsets)
{
    ExperimentSpec spec;
    spec.noise = "evaluation";
    spec.attack = evsets ? "unxpec-evset" : "unxpec";
    return spec;
}

int
runTimingDifference(bool evsets)
{
    Session session(evaluationSpec(evsets), kSeed);
    UnxpecAttack &attack = session.unxpec();
    for (const int secret : {0, 1}) {
        std::cout << "# secret " << secret << " (1000 measurements)\n";
        for (const double v : attack.collect(secret, 1000))
            std::cout << v << "\n";
    }
    return 0;
}

int
runLeakageRate()
{
    ExperimentSpec spec;
    spec.attackCfg.mistrainIterations = 56; // the paper's operating point
    Session session(spec, kSeed);
    UnxpecAttack &attack = session.unxpec();
    attack.collect(0, 10);
    attack.collect(1, 10);
    const double rate = LeakageRate::samplesPerSecond(
        attack.cyclesPerSample(), session.core().config().clockGHz);
    std::cout << "cycles per sample: " << attack.cyclesPerSample()
              << "\nsample rate: " << rate << " samples/s\n"
              << "leakage rate (1 sample/bit): " << rate / 1000.0
              << " Kbps (paper: ~140 Kbps)\n";
    return 0;
}

int
runSecretLeakage(bool evsets)
{
    Session session(evaluationSpec(evsets), kSeed);
    UnxpecAttack &attack = session.unxpec();
    const double threshold = attack.calibrate(300);

    Rng rng(20220402);
    std::vector<int> secret;
    for (int i = 0; i < 1000; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    const LeakResult result = attack.leak(secret, threshold);
    for (std::size_t i = 0; i < secret.size(); ++i) {
        std::cout << secret[i] << " " << result.guesses[i] << " "
                  << result.latencies[i] << "\n";
    }
    std::cout << "# accuracy " << result.accuracy * 100 << " % (paper: "
              << (evsets ? "91.6" : "86.7") << " %)\n";
    return 0;
}

int
runNoiseInsensitivity()
{
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            std::cout << "f(N)=" << accesses << " secret=" << secret
                      << ":";
            for (unsigned loads = 1; loads <= 5; ++loads) {
                ExperimentSpec spec;
                spec.defense = "noisy_host";
                spec.noise = "noisy_host";
                spec.attackCfg.inBranchLoads = loads;
                spec.attackCfg.conditionAccesses = accesses;
                Session session(spec, kSeed);
                UnxpecAttack &attack = session.unxpec();
                attack.setSecret(secret);
                double total = 0.0;
                for (int r = 0; r < 10; ++r) {
                    attack.measureOnce();
                    total += static_cast<double>(
                        attack.lastDetail().branchResolution);
                }
                std::cout << " " << total / 10;
            }
            std::cout << "\n";
        }
    }
    return 0;
}

int
runConstantTime(const std::string &benchmark, std::uint64_t maxinst,
                std::uint64_t startinst)
{
    const Program program =
        SynthSpec::generate(SynthSpec::profile(benchmark), 42);
    RunOptions options;
    options.maxInstructions = maxinst;
    options.warmupInstructions = startinst;

    auto report = [&](const char *label, Core &core,
                      const RunResult &r) {
        std::cout << "== " << label << " ==\n";
        std::cout << "sim_ticks " << r.cycles << "\n";
        std::cout << "system.cpu.fetch.startCycles " << r.warmupCycles
                  << "\n";
        const Counter *extra = core.cleanup().stats().findCounter(
            "extraCleanupSquashTimeCycles");
        if (extra != nullptr && extra->value() > 0) {
            std::cout << "system.cpu.iew.lsq.thread0."
                         "extraCleanupSquashTimeCycles "
                      << extra->value() << "\n";
        }
    };

    Core unsafe(makeDefense("unsafe"));
    const RunResult base = unsafe.run(program, options);
    report("UnsafeBaseline", unsafe, base);
    const double base_cycles =
        static_cast<double>(base.cycles - base.warmupCycles);

    for (const unsigned constant : {0u, 25u, 30u, 35u, 45u, 65u}) {
        ExperimentSpec spec;
        spec.tweak = [constant](SystemConfig &cfg) {
            cfg.cleanupTiming.constantTimeCycles = constant;
        };
        Core core(Session::configFor(spec, kSeed));
        const RunResult run = core.run(program, options);
        const std::string label = constant == 0
            ? "Cleanup_FOR_L1L2 (no const)"
            : "Cleanup_FOR_L1L2 const=" + std::to_string(constant);
        report(label.c_str(), core, run);
        const double measured =
            static_cast<double>(run.cycles - run.warmupCycles);
        std::cout << "overhead " << (measured / base_cycles - 1.0) * 100
                  << " %\n";
    }
    return 0;
}

void
usage()
{
    std::cout <<
        "usage: artifact_runner <experiment> [options]\n"
        "  TimingDifference [-e]      SVI-A measurements (Figs 7/8)\n"
        "  LeakageRate                SVI-B sample rate\n"
        "  SecretLeakage [-e]         SVI-C 1000-bit leak (Figs 10/11)\n"
        "  NoiseInsensitivity         SVI-D noisy-host resolution "
        "(Fig 13)\n"
        "  ConstantTime <benchmark> [maxinst] [startinst]\n"
        "                             SVI-E one Fig-12 row "
        "(e.g. mcf_r)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string experiment = argv[1];
    const bool evsets = hasFlag(argc, argv, "-e");

    if (experiment == "TimingDifference")
        return runTimingDifference(evsets);
    if (experiment == "LeakageRate")
        return runLeakageRate();
    if (experiment == "SecretLeakage")
        return runSecretLeakage(evsets);
    if (experiment == "NoiseInsensitivity")
        return runNoiseInsensitivity();
    if (experiment == "ConstantTime") {
        if (argc < 3) {
            usage();
            return 1;
        }
        const std::uint64_t maxinst =
            argc > 3 ? std::atoll(argv[3]) : 100000;
        const std::uint64_t startinst =
            argc > 4 ? std::atoll(argv[4]) : maxinst / 5;
        return runConstantTime(argv[2], maxinst, startinst);
    }
    usage();
    return 1;
}
