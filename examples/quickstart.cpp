/**
 * @file
 * Quickstart: build a tiny program with the ProgramBuilder, run it on
 * the simulated out-of-order core behind a CleanupSpec-protected cache
 * hierarchy, and read back registers, memory, and statistics. The
 * defense is picked from the harness registry, so the same walkthrough
 * runs on any scheme:
 *
 *   $ ./quickstart                # CleanupSpec (Cleanup_FOR_L1L2)
 *   $ ./quickstart --mode invisispec
 *   $ ./quickstart --list-modes
 */

#include <iostream>

#include "analysis/perf_report.hh"
#include "cpu/assembler.hh"
#include "cpu/core.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("quickstart",
                   "Assemble, run, and inspect a tiny program on a "
                   "defense picked from the registry");
    const HarnessOptions opt = cli.parse(argc, argv);

    // 1. Configure the Table-I system (1 core @ 2 GHz, 192-entry ROB,
    //    32 KB L1s, 2 MB L2) with the selected defense — by default
    //    CleanupSpec in Cleanup_FOR_L1L2 mode.
    const SystemConfig cfg = Session::configFor(cli.baseSpec(opt), opt.seed);
    cfg.print(std::cout);
    Core core(cfg);

    // 2. Assemble a program: sum an in-memory array, timing the loop
    //    with rdtscp.
    ProgramBuilder b;
    const Addr array = b.alloc(8 * 16);
    for (unsigned i = 0; i < 16; ++i)
        b.initWord64(array + 8 * i, i * i);

    b.li(1, static_cast<std::int64_t>(array)); // base
    b.li(2, 0);                                // i
    b.li(3, 16);                               // count
    b.li(4, 0);                                // sum
    b.rdtscp(10);

    const int top = b.label();
    b.bind(top);
    b.shl(5, 2, 3);
    b.add(5, 5, 1);
    b.load(6, 5, 0);
    b.add(4, 4, 6);
    b.addi(2, 2, 1);
    b.blt(2, 3, top);

    b.rdtscp(11);
    b.sub(12, 11, 10);
    b.halt();
    const Program program = b.build();

    std::cout << "\nProgram (" << program.size() << " instructions):\n"
              << program.listing() << "\n";

    // 3. Run it.
    const RunResult result = core.run(program);
    std::cout << "sum of squares 0..15 = " << result.reg(4)
              << " (expected 1240)\n";
    std::cout << "loop time: " << result.reg(12) << " cycles; total run: "
              << result.cycles << " cycles for " << result.instructions
              << " instructions\n\n";

    // 4. Distilled performance metrics...
    std::cout << "Performance report:\n";
    PerfReport::of(core, result).print(std::cout);

    // 5. ...and the raw gem5-style statistics.
    std::cout << "\nRaw counters:\n";
    core.stats().dump(std::cout);
    core.hierarchy().l1d().stats().dump(std::cout);
    core.cleanup().stats().dump(std::cout);

    // 6. The same kernel can be written as plain assembly text.
    const Program assembled = Assembler::assemble(R"(
        .data vec 128
        .word vec 0  11
        .word vec 64 31
        li r1, vec
        load8 r2, [r1+0]
        load8 r3, [r1+64]
        add r4, r2, r3
        halt
    )");
    const RunResult asm_result = core.run(assembled);
    std::cout << "\nAssembled kernel: 11 + 31 = " << asm_result.reg(4)
              << "\n";
    return 0;
}
